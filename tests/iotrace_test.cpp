// Tests for the block I/O trace recorder (src/obs/iotrace.{hpp,cpp}) and the
// offline replay simulator (src/obs/iotrace_replay.{hpp,cpp}): binary
// roundtrip, disarmed no-op cost, in-process engine fidelity (replay at the
// recorded budget == the live counters), the zero-budget bypass, miss-ratio
// curves (including from an uncached trace), the predictor what-if, and
// concurrent recording.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

#include "husg/husg.hpp"
#include "test_util.hpp"
#include "util/common.hpp"

namespace husg {
namespace {

using obs::AccessEvent;
using obs::DecisionEvent;
using obs::IoTrace;
using obs::ReplayCounters;
using obs::TraceAdmit;
using obs::TraceBlockKind;
using obs::TraceFile;
using obs::TraceInsertMode;
using obs::TraceOutcome;
using obs::TraceRecord;
using obs::TraceRunInfo;
using testing::ScratchDir;

TraceRunInfo info_for(const StoreMeta& meta, const EngineOptions& o) {
  TraceRunInfo info;
  info.p = meta.p();
  info.budget_bytes = o.cache_budget_bytes;
  info.max_block_fraction = o.cache_max_block_fraction;
  info.fill_rop = o.cache_fill_rop;
  info.flavor = static_cast<std::uint8_t>(o.predictor);
  info.granularity = static_cast<std::uint8_t>(o.granularity);
  info.alpha = o.alpha;
  info.seq_read_bw = o.device.seq_read_bw;
  info.rand_read_bw = o.device.rand_read_bw;
  info.write_bw = o.device.write_bw;
  info.seek_seconds = o.device.seek_seconds;
  info.num_vertices = meta.num_vertices;
  info.num_edges = meta.num_edges;
  info.edge_bytes = meta.edge_record_bytes();
  return info;
}

std::uint64_t half_out_adj_budget(const DualBlockStore& store) {
  std::uint64_t out_adj = 0;
  for (std::uint32_t i = 0; i < store.meta().p(); ++i) {
    for (std::uint32_t j = 0; j < store.meta().p(); ++j) {
      out_adj += store.meta().out_block(i, j).adj_bytes;
    }
  }
  return out_adj / 2;
}

/// Runs hybrid PageRank over a cached engine with the trace armed and
/// returns the loaded trace plus the engine's own stats.
struct TracedRun {
  TraceFile trace;
  RunStats stats;
};

TracedRun record_engine_run(const DualBlockStore& store,
                            const std::string& path, EngineOptions o) {
  IoTrace::instance().start(path, info_for(store.meta(), o));
  Engine e(store, o);
  PageRankProgram p;
  RunStats stats =
      e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats;
  IoTrace::instance().stop();
  return TracedRun{obs::load_trace(path), stats};
}

TEST(IoTraceTest, DisarmedRecordingIsDropped) {
  IoTrace& t = IoTrace::instance();
  ASSERT_FALSE(t.armed());
  const std::uint64_t before = t.events_recorded();
  t.record_access(AccessEvent{});
  t.record_evict(TraceBlockKind::kOutAdj, 0, 0, 64);
  t.record_decision(DecisionEvent{});
  EXPECT_EQ(t.events_recorded(), before);
}

TEST(IoTraceTest, BinaryRoundtripPreservesHeaderAndRecords) {
  ScratchDir scratch("iotrace_roundtrip");
  const std::string path = scratch / "trace.bin";

  TraceRunInfo info;
  info.p = 4;
  info.budget_bytes = 123456;
  info.max_block_fraction = 0.5;
  info.fill_rop = false;
  info.flavor = static_cast<std::uint8_t>(PredictorFlavor::kCacheAware);
  info.granularity = 1;
  info.alpha = 0.07;
  info.seq_read_bw = 500e6;
  info.rand_read_bw = 30e6;
  info.write_bw = 400e6;
  info.seek_seconds = 1e-4;
  info.num_vertices = 1024;
  info.num_edges = 8192;
  info.edge_bytes = 8;

  IoTrace& t = IoTrace::instance();
  t.start(path, info);
  ASSERT_TRUE(t.armed());

  AccessEvent a;
  a.kind = TraceBlockKind::kInAdj;
  a.outcome = TraceOutcome::kMiss;
  a.insert_mode = TraceInsertMode::kAlways;
  a.admit = TraceAdmit::kInserted;
  a.row = 3;
  a.col = 1;
  a.owner = 7;
  a.saved_bytes = 100;
  a.payload_bytes = 160;
  a.disk_bytes = 100;
  t.record_access(a);
  t.record_evict(TraceBlockKind::kOutAdj, 2, 2, 4096);
  DecisionEvent d;
  d.iteration = 5;
  d.interval = 2;
  d.active_vertices = 33;
  d.active_degree_sum = 177;
  d.value_bytes = 8;
  d.column_edge_bytes = 1 << 20;
  d.row_edge_bytes = 1 << 19;
  d.cached_row_edge_bytes = 512;
  d.cached_column_edge_bytes = 1024;
  d.c_rop = 0.25;
  d.c_cop = 0.75;
  d.used_rop = true;
  d.alpha_shortcut = false;
  t.record_decision(d);
  t.stop();
  EXPECT_FALSE(t.armed());
  EXPECT_GT(t.bytes_written(), 96u);

  TraceFile f = obs::load_trace(path);
  EXPECT_EQ(f.info.p, info.p);
  EXPECT_EQ(f.info.budget_bytes, info.budget_bytes);
  EXPECT_DOUBLE_EQ(f.info.max_block_fraction, info.max_block_fraction);
  EXPECT_EQ(f.info.fill_rop, info.fill_rop);
  EXPECT_EQ(f.info.flavor, info.flavor);
  EXPECT_EQ(f.info.granularity, info.granularity);
  EXPECT_DOUBLE_EQ(f.info.alpha, info.alpha);
  EXPECT_DOUBLE_EQ(f.info.rand_read_bw, info.rand_read_bw);
  EXPECT_EQ(f.info.num_vertices, info.num_vertices);
  EXPECT_EQ(f.info.num_edges, info.num_edges);
  EXPECT_EQ(f.info.edge_bytes, info.edge_bytes);

  ASSERT_EQ(f.records.size(), 3u);
  // Sorted by seq: the order we recorded in (single thread).
  ASSERT_EQ(f.records[0].type, TraceRecord::Type::kAccess);
  const AccessEvent& ra = f.records[0].access;
  EXPECT_EQ(ra.kind, a.kind);
  EXPECT_EQ(ra.outcome, a.outcome);
  EXPECT_EQ(ra.insert_mode, a.insert_mode);
  EXPECT_EQ(ra.admit, a.admit);
  EXPECT_EQ(ra.row, a.row);
  EXPECT_EQ(ra.col, a.col);
  EXPECT_EQ(ra.owner, a.owner);
  EXPECT_EQ(ra.saved_bytes, a.saved_bytes);
  EXPECT_EQ(ra.payload_bytes, a.payload_bytes);
  EXPECT_EQ(ra.disk_bytes, a.disk_bytes);
  ASSERT_EQ(f.records[1].type, TraceRecord::Type::kEvict);
  EXPECT_EQ(f.records[1].evict.kind, TraceBlockKind::kOutAdj);
  EXPECT_EQ(f.records[1].evict.bytes, 4096u);
  ASSERT_EQ(f.records[2].type, TraceRecord::Type::kDecision);
  const DecisionEvent& rd = f.records[2].decision;
  EXPECT_EQ(rd.iteration, d.iteration);
  EXPECT_EQ(rd.interval, d.interval);
  EXPECT_EQ(rd.active_vertices, d.active_vertices);
  EXPECT_EQ(rd.active_degree_sum, d.active_degree_sum);
  EXPECT_EQ(rd.cached_row_edge_bytes, d.cached_row_edge_bytes);
  EXPECT_EQ(rd.cached_column_edge_bytes, d.cached_column_edge_bytes);
  EXPECT_DOUBLE_EQ(rd.c_rop, d.c_rop);
  EXPECT_DOUBLE_EQ(rd.c_cop, d.c_cop);
  EXPECT_TRUE(rd.used_rop);
  EXPECT_FALSE(rd.alpha_shortcut);
  EXPECT_LT(f.records[0].seq(), f.records[1].seq());
  EXPECT_LT(f.records[1].seq(), f.records[2].seq());

  // The JSONL export carries every record type.
  std::ostringstream jsonl;
  obs::write_jsonl(f, jsonl);
  const std::string text = jsonl.str();
  EXPECT_NE(text.find("\"access\""), std::string::npos);
  EXPECT_NE(text.find("\"evict\""), std::string::npos);
  EXPECT_NE(text.find("\"decision\""), std::string::npos);
}

TEST(IoTraceTest, LoadRejectsGarbage) {
  ScratchDir scratch("iotrace_garbage");
  const std::string path = scratch / "bogus.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTATRACE_________";
  }
  EXPECT_THROW(obs::load_trace(path), DataError);
  EXPECT_THROW(obs::load_trace(scratch / "missing.bin"), std::exception);
}

// ---------------------------------------------------------------------------
// Engine-recorded traces: fidelity, curves, what-if.

TEST(IoTraceReplayTest, ReplayAtRecordedBudgetMatchesLiveRun) {
  ScratchDir scratch("iotrace_fidelity");
  DualBlockStore store =
      DualBlockStore::build(gen::rmat(10, 8.0, 7), scratch / "store",
                            StoreOptions{4});
  EngineOptions o;
  o.threads = 1;  // fidelity is exact only without racing workers
  o.file_backed_values = false;
  // ROP point loads with fill: a half-out-adj budget produces hits, misses,
  // rejects and evictions in one run (COP's cyclic streaming is CLOCK's
  // worst case — zero hits — so it exercises nothing).
  o.mode = UpdateMode::kRop;
  o.max_iterations = 4;
  o.cache_budget_bytes = half_out_adj_budget(store);
  TracedRun run =
      record_engine_run(store, scratch / "trace.bin", o);

  const ReplayCounters live = obs::live_counters(run.trace);
  const ReplayCounters replayed = obs::replay_cache(
      run.trace, run.trace.info.budget_bytes,
      run.trace.info.max_block_fraction);
  EXPECT_EQ(replayed, live);

  // The trace's live outcomes are the engine's own cache counters.
  EXPECT_EQ(live.hits, run.stats.cache.hits);
  EXPECT_EQ(live.misses, run.stats.cache.misses);
  EXPECT_EQ(live.evictions, run.stats.cache.evictions);
  EXPECT_EQ(live.bytes_saved, run.stats.cache.bytes_saved);
  EXPECT_GT(live.hits, 0u);
  EXPECT_GT(live.evictions, 0u);

  // Zero-budget replay: no consults, pure direct reads.
  const ReplayCounters uncached = obs::replay_cache(run.trace, 0, 0.25);
  EXPECT_EQ(uncached.hits, 0u);
  EXPECT_EQ(uncached.misses, 0u);
  EXPECT_EQ(uncached.evictions, 0u);
  std::uint64_t direct = 0;
  for (const TraceRecord& r : run.trace.records) {
    if (r.type == TraceRecord::Type::kAccess) direct += r.access.saved_bytes;
  }
  EXPECT_EQ(uncached.disk_read_bytes, direct);

  // The volume gauges surface through RunStats::publish().
  obs::Registry reg;
  run.stats.publish(reg);
  std::ostringstream prom;
  reg.write_prometheus(prom);
  EXPECT_NE(prom.str().find("husg_iotrace_events"), std::string::npos);
}

TEST(IoTraceReplayTest, MissRatioCurveIsMonotoneWithSaneKnee) {
  ScratchDir scratch("iotrace_curve");
  DualBlockStore store =
      DualBlockStore::build(gen::rmat(10, 8.0, 7), scratch / "store",
                            StoreOptions{4});
  EngineOptions o;
  o.threads = 1;
  o.file_backed_values = false;
  o.mode = UpdateMode::kRop;  // point-load reuse: a well-behaved MRC
  o.max_iterations = 4;
  o.cache_budget_bytes = half_out_adj_budget(store);
  TracedRun run = record_engine_run(store, scratch / "trace.bin", o);

  obs::MissRatioCurve curve = obs::miss_ratio_curve(run.trace, 12);
  ASSERT_GE(curve.points.size(), 12u);
  EXPECT_GT(curve.unique_payload_bytes, 0u);
  for (std::size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_GT(curve.points[k].budget_bytes, curve.points[k - 1].budget_bytes);
    EXPECT_LE(curve.points[k].counters.miss_ratio(),
              curve.points[k - 1].counters.miss_ratio() + 1e-9)
        << "miss ratio rose from budget "
        << curve.points[k - 1].budget_bytes << " to "
        << curve.points[k].budget_bytes;
  }
  // The largest budget holds the whole working set: every consult after the
  // first touch hits, and the knee lies inside the swept range.
  EXPECT_LT(curve.points.back().counters.miss_ratio(),
            curve.points.front().counters.miss_ratio());
  EXPECT_GE(curve.knee_budget_bytes, curve.points.front().budget_bytes);
  EXPECT_LE(curve.knee_budget_bytes, curve.points.back().budget_bytes);
}

TEST(IoTraceReplayTest, UncachedTraceStillYieldsACurve) {
  ScratchDir scratch("iotrace_uncached");
  DualBlockStore store =
      DualBlockStore::build(gen::rmat(9, 6.0, 3), scratch / "store",
                            StoreOptions{4});
  EngineOptions o;
  o.threads = 1;
  o.file_backed_values = false;
  o.max_iterations = 3;
  o.cache_budget_bytes = 0;  // bypass events only
  TracedRun run = record_engine_run(store, scratch / "trace.bin", o);

  const ReplayCounters live = obs::live_counters(run.trace);
  EXPECT_EQ(live.lookups(), 0u);
  EXPECT_GT(live.disk_read_bytes, 0u);

  // Replaying bypass events against a simulated cache answers "what would a
  // cache of budget B have done for this run".
  obs::MissRatioCurve curve = obs::miss_ratio_curve(run.trace, 8);
  ASSERT_GE(curve.points.size(), 8u);
  EXPECT_GT(curve.points.back().counters.hits, 0u);
  EXPECT_LT(curve.points.back().counters.miss_ratio(), 1.0);
}

TEST(IoTraceReplayTest, WhatIfReportsFlipsAndModeledDelta) {
  ScratchDir scratch("iotrace_whatif");
  DualBlockStore store =
      DualBlockStore::build(gen::rmat(10, 8.0, 7), scratch / "store",
                            StoreOptions{4});
  EngineOptions o;
  o.threads = 1;
  o.file_backed_values = false;
  o.max_iterations = 4;
  o.cache_budget_bytes = half_out_adj_budget(store);
  o.alpha = 0;  // no shortcut: every decision carries real predicted costs
  TracedRun run = record_engine_run(store, scratch / "trace.bin", o);

  std::uint64_t decision_records = 0;
  for (const TraceRecord& r : run.trace.records) {
    if (r.type == TraceRecord::Type::kDecision) ++decision_records;
  }
  ASSERT_GT(decision_records, 0u);

  // Re-running the recorded flavor over the recorded inputs must reproduce
  // the recorded decisions bit-for-bit on a single-threaded trace.
  obs::WhatIfResult same = obs::whatif_predictor(
      run.trace, static_cast<PredictorFlavor>(run.trace.info.flavor));
  EXPECT_EQ(same.decisions, decision_records);
  EXPECT_EQ(same.flips, 0u);
  EXPECT_EQ(same.baseline_mismatches, 0u);
  EXPECT_DOUBLE_EQ(same.modeled_io_seconds,
                   same.baseline_modeled_io_seconds);
  EXPECT_GT(same.modeled_io_seconds, 0.0);

  // The ISSUE's headline comparison: kPaper vs kCacheAware over the same
  // inputs. Both report against the same recorded baseline.
  obs::WhatIfResult paper =
      obs::whatif_predictor(run.trace, PredictorFlavor::kPaper);
  obs::WhatIfResult aware =
      obs::whatif_predictor(run.trace, PredictorFlavor::kCacheAware);
  EXPECT_EQ(paper.decisions, decision_records);
  EXPECT_EQ(aware.decisions, decision_records);
  EXPECT_EQ(paper.baseline_mismatches, 0u);
  EXPECT_EQ(aware.baseline_mismatches, 0u);
  EXPECT_GT(paper.modeled_io_seconds, 0.0);
  EXPECT_GT(aware.modeled_io_seconds, 0.0);
  EXPECT_DOUBLE_EQ(paper.baseline_modeled_io_seconds,
                   aware.baseline_modeled_io_seconds);
}

TEST(IoTraceTest, ConcurrentRecordingKeepsEveryEvent) {
  ScratchDir scratch("iotrace_concurrent");
  const std::string path = scratch / "trace.bin";
  IoTrace& t = IoTrace::instance();
  t.start(path, TraceRunInfo{});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, w] {
      for (int k = 0; k < kPerThread; ++k) {
        AccessEvent e;
        e.kind = TraceBlockKind::kOutAdj;
        e.outcome = TraceOutcome::kHit;
        e.row = static_cast<std::uint32_t>(w);
        e.col = static_cast<std::uint32_t>(k);
        e.saved_bytes = 64;
        t.record_access(e);
      }
    });
  }
  for (auto& th : threads) th.join();
  t.stop();

  TraceFile f = obs::load_trace(path);
  ASSERT_EQ(f.records.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // seq gives the merged stream a strict total order.
  for (std::size_t k = 1; k < f.records.size(); ++k) {
    EXPECT_LT(f.records[k - 1].seq(), f.records[k].seq());
  }
  const ReplayCounters live = obs::live_counters(f);
  EXPECT_EQ(live.hits, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace husg
