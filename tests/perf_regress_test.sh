#!/bin/sh
# Perf-regression gate self-test: run the deterministic smoke bench and
# compare it against the checked-in baseline (must pass), then against a
# doctored baseline with shrunken I/O counts (must fail). Invoked by ctest
# with the perf_smoke binary as $1 and the source dir as $2.
set -eu

BENCH="$1"
SRC="$2"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/husg_perf_regress.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

if ! command -v python3 > /dev/null 2>&1; then
  echo "perf_regress_test SKIPPED (no python3)"
  exit 0
fi

"$BENCH" --out-dir "$WORK" --data-dir "$WORK/data" > "$WORK/bench.log" \
  || fail "perf_smoke exited nonzero"
[ -s "$WORK/BENCH_perf_smoke.json" ] || fail "bench wrote no JSON report"

# Same binary vs the checked-in baseline: zero regressions. --strict also
# fails the gate if a baseline key vanished from the fresh report (a bench
# that silently stops emitting a counter must not pass).
python3 "$SRC/tools/bench_regress.py" \
  --baseline "$SRC/bench/baselines/perf_smoke.json" \
  --current "$WORK/BENCH_perf_smoke.json" --strict \
  || fail "regression against checked-in baseline (regenerate \
bench/baselines/perf_smoke.json if the I/O change is intentional)"

# Negative control: a baseline with 20% less I/O must trip the gate.
python3 - "$SRC/bench/baselines/perf_smoke.json" "$WORK/doctored.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
d["runs"][0]["io_total_bytes"] = int(d["runs"][0]["io_total_bytes"] * 0.8)
with open(sys.argv[2], "w") as f:
    json.dump(d, f)
EOF
if python3 "$SRC/tools/bench_regress.py" \
    --baseline "$WORK/doctored.json" \
    --current "$WORK/BENCH_perf_smoke.json" > /dev/null 2>&1; then
  fail "gate passed against a doctored baseline"
fi

# Negative control: a current report whose armed-profiler overhead blows the
# absolute ceiling (MAX_FIELDS) must trip the gate even though the pinned
# counters all match.
python3 - "$WORK/BENCH_perf_smoke.json" "$WORK/slow_profiler.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
for run in d["runs"]:
    if run["label"] == "profiler/overhead":
        run["profiler_overhead_ratio"] = 0.5
with open(sys.argv[2], "w") as f:
    json.dump(d, f)
EOF
if python3 "$SRC/tools/bench_regress.py" \
    --baseline "$SRC/bench/baselines/perf_smoke.json" \
    --current "$WORK/slow_profiler.json" > /dev/null 2>&1; then
  fail "gate passed a profiler overhead ratio above the ceiling"
fi

echo "perf_regress_test OK"
