// Property-based invariants across modules, swept over seeds with
// parameterized gtest. These complement the exact-value tests: they assert
// relationships that must hold for *any* input.
#include <gtest/gtest.h>

#include <thread>

#include "husg/husg.hpp"
#include "io/tracked_file.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// --- Reference-algorithm cross-properties -------------------------------------

TEST_P(SeedSweep, BfsEqualsUnitWeightSssp) {
  EdgeList g = gen::rmat(8, 6.0, GetParam());
  auto levels = ref::bfs_levels(g, 1);
  auto dists = ref::sssp_distances(g, 1);  // unweighted edges count as 1
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (levels[v] == ref::kUnreachedLevel) {
      EXPECT_TRUE(std::isinf(dists[v]));
    } else {
      EXPECT_FLOAT_EQ(dists[v], static_cast<float>(levels[v]));
    }
  }
}

TEST_P(SeedSweep, BfsLevelsAreLipschitzAlongEdges) {
  EdgeList g = gen::erdos_renyi(300, 1500, GetParam());
  auto levels = ref::bfs_levels(g, 0);
  for (const Edge& e : g.edges()) {
    if (levels[e.src] != ref::kUnreachedLevel) {
      ASSERT_NE(levels[e.dst], ref::kUnreachedLevel);
      EXPECT_LE(levels[e.dst], levels[e.src] + 1);
    }
  }
}

TEST_P(SeedSweep, WccLabelsAreComponentMinima) {
  EdgeList g = gen::erdos_renyi(200, 300, GetParam());
  auto labels = ref::wcc_labels(g);
  // The label is a member of its own component and is minimal.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(labels[v], v);
    EXPECT_EQ(labels[labels[v]], labels[v]);
  }
  // Edge endpoints share a label.
  for (const Edge& e : g.edges()) EXPECT_EQ(labels[e.src], labels[e.dst]);
}

// --- Engine decision invariants -------------------------------------------------

TEST_P(SeedSweep, PerIntervalGranularityMatchesGlobalResults) {
  EdgeList g = gen::rmat(8, 7.0, GetParam());
  ScratchDir dir("prop_gran");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  BfsProgram bfs{.source = 1};
  RunResult<BfsProgram::Value> results[2];
  for (int gi = 0; gi < 2; ++gi) {
    EngineOptions o;
    o.granularity = gi == 0 ? DecisionGranularity::kGlobal
                            : DecisionGranularity::kPerInterval;
    o.device = DeviceProfile::hdd7200().with_seek_scale(1e-3);
    Engine e(store, o);
    results[gi] =
        e.run(bfs, Frontier::single(store.meta(), 1, store.out_degrees()));
  }
  EXPECT_EQ(results[0].values, results[1].values);
}

TEST_P(SeedSweep, IterationIoSumsToTotal) {
  EdgeList g = gen::rmat(8, 6.0, GetParam());
  ScratchDir dir("prop_io");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  Engine engine(store, EngineOptions{});
  WccProgram wcc;
  auto r = engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
  IoSnapshot sum;
  std::uint64_t edges = 0;
  for (const auto& it : r.stats.iterations) {
    sum += it.io;
    edges += it.edges_processed;
  }
  EXPECT_EQ(sum.total_bytes(), r.stats.total_io.total_bytes());
  EXPECT_EQ(sum.seq_read_ops, r.stats.total_io.seq_read_ops);
  EXPECT_EQ(sum.rand_read_ops, r.stats.total_io.rand_read_ops);
  EXPECT_EQ(edges, r.stats.edges_processed);
}

TEST_P(SeedSweep, FrontierCountsMatchChangedValues) {
  EdgeList g = gen::rmat(8, 6.0, GetParam());
  ScratchDir dir("prop_fr");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  Engine engine(store, EngineOptions{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(
      bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  // Every vertex that ends reachable (other than the source) must have been
  // counted in exactly one frontier.
  std::uint64_t total_activations = 0;
  for (const auto& it : r.stats.iterations) {
    total_activations += it.active_vertices;
  }
  std::uint64_t reached = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    reached += r.values[v] != BfsProgram::kUnreached ? 1 : 0;
  }
  // BFS activates each reached vertex exactly once (+ the source's own
  // initial activation). The final frontier may not have been processed if
  // it had no out-edges.
  EXPECT_GE(total_activations, reached - 1);
  EXPECT_LE(total_activations, reached);
}

// --- Predictor monotonicity -----------------------------------------------------

TEST_P(SeedSweep, PredictorCostsAreMonotone) {
  SplitMix64 rng(GetParam());
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kPaper, 0);
  PredictionInputs in;
  in.num_vertices = 1'000'000;
  in.num_edges = 10'000'000 + rng.next_below(10'000'000);
  in.p = 4 + static_cast<std::uint32_t>(rng.next_below(12));
  in.edge_bytes = 4;
  in.value_bytes = 4;
  in.column_edge_bytes = in.num_edges / in.p * 4;
  in.active_vertices = 1000;
  in.active_degree_sum = 10'000 + rng.next_below(100'000);

  Prediction base = pred.predict(in);
  // More active edges -> ROP strictly costlier, COP unchanged.
  PredictionInputs denser = in;
  denser.active_degree_sum *= 2;
  Prediction d = pred.predict(denser);
  EXPECT_GT(d.c_rop, base.c_rop);
  EXPECT_DOUBLE_EQ(d.c_cop, base.c_cop);
  // More edges overall -> COP costlier, ROP unchanged.
  PredictionInputs bigger = in;
  bigger.num_edges *= 2;
  Prediction b = pred.predict(bigger);
  EXPECT_GT(b.c_cop, base.c_cop);
  EXPECT_DOUBLE_EQ(b.c_rop, base.c_rop);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Concurrency ------------------------------------------------------------------

TEST(TrackedFileConcurrency, ParallelReadsAccountExactly) {
  ScratchDir dir("conc");
  IoStats stats;
  std::vector<std::uint32_t> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint32_t>(i);
  }
  {
    TrackedFile w(dir / "f.bin", File::Mode::kWrite, &stats);
    w.write(data.data(), data.size() * sizeof(std::uint32_t), 0);
  }
  TrackedFile f(dir / "f.bin", File::Mode::kRead, &stats);
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(t + 1);
      std::uint32_t buf[16];
      for (int k = 0; k < kReadsPerThread; ++k) {
        std::uint64_t idx = rng.next_below(data.size() - 16);
        f.read_random(buf, sizeof(buf), idx * sizeof(std::uint32_t));
        for (int j = 0; j < 16; ++j) {
          if (buf[j] != idx + static_cast<std::uint32_t>(j)) ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  IoSnapshot s = stats.snapshot();
  EXPECT_EQ(s.rand_read_ops, kThreads * kReadsPerThread);
  EXPECT_EQ(s.rand_read_bytes,
            static_cast<std::uint64_t>(kThreads) * kReadsPerThread * 64);
}

TEST(EngineConcurrency, ManyThreadsManyPartitions) {
  EdgeList g = gen::rmat(10, 8.0, 61).symmetrized();
  ScratchDir dir("conc2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{16});
  EngineOptions o;
  o.threads = 8;
  Engine engine(store, o);
  WccProgram wcc;
  auto r = engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
  auto want = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.values[v], want[v]);
  }
}

}  // namespace
}  // namespace husg
