// Frontier, predictor, and value-store unit tests.
#include <gtest/gtest.h>

#include "core/frontier.hpp"
#include "core/predictor.hpp"
#include "core/value_store.hpp"
#include "graph/generators.hpp"
#include "storage/store.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

// --- Frontier -------------------------------------------------------------------

TEST(FrontierTest, SingleAndAll) {
  EdgeList g = gen::rmat(6, 4.0, 3);
  ScratchDir dir("fr");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  auto single = Frontier::single(store.meta(), 5, store.out_degrees());
  EXPECT_EQ(single.active_vertices(), 1u);
  EXPECT_TRUE(single.is_active(5));
  EXPECT_FALSE(single.is_active(6));
  EXPECT_EQ(single.active_out_degree(), store.out_degrees()[5]);

  auto all = Frontier::all(store.meta(), store.out_degrees());
  EXPECT_EQ(all.active_vertices(), g.num_vertices());
  EXPECT_EQ(all.active_out_degree(), g.num_edges());

  auto none = Frontier::none(store.meta());
  EXPECT_TRUE(none.empty());
}

TEST(FrontierTest, PerIntervalCounts) {
  EdgeList g = gen::chain(16);
  ScratchDir dir("fr2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  AtomicBitmap bits(16);
  bits.set(0);
  bits.set(1);
  bits.set(4);
  bits.set(15);
  auto f = Frontier::from_bits(store.meta(), bits, store.out_degrees());
  EXPECT_EQ(f.active_vertices(), 4u);
  EXPECT_EQ(f.active_in(0), 2u);
  EXPECT_EQ(f.active_in(1), 1u);
  EXPECT_EQ(f.active_in(2), 0u);
  EXPECT_EQ(f.active_in(3), 1u);
  // Chain: outdeg 1 for all but the last vertex.
  EXPECT_EQ(f.active_degree_in(3), 0u);
  EXPECT_EQ(f.active_degree_in(0), 2u);
}

TEST(FrontierTest, ForEachActiveOrdered) {
  EdgeList g = gen::chain(32);
  ScratchDir dir("fr3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  AtomicBitmap bits(32);
  for (VertexId v : {3u, 9u, 17u, 31u}) bits.set(v);
  auto f = Frontier::from_bits(store.meta(), bits, store.out_degrees());
  std::vector<VertexId> seen;
  f.for_each_active(0, 32, [&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{3, 9, 17, 31}));
  seen.clear();
  f.for_each_active(4, 18, [&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{9, 17}));
}

TEST(FrontierTest, SingleOutOfRangeThrows) {
  EdgeList g = gen::chain(4);
  ScratchDir dir("fr4");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  EXPECT_THROW(Frontier::single(store.meta(), 99, store.out_degrees()),
               DataError);
}

// --- Predictor --------------------------------------------------------------------

PredictionInputs base_inputs() {
  PredictionInputs in;
  in.num_vertices = 1'000'000;
  in.num_edges = 16'000'000;
  in.p = 8;
  in.edge_bytes = 4;
  in.value_bytes = 4;
  in.column_edge_bytes = in.num_edges / in.p * in.edge_bytes;
  return in;
}

TEST(Predictor, SparseFrontierChoosesRop) {
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kPaper,
                       0.05);
  PredictionInputs in = base_inputs();
  in.active_vertices = 10;
  in.active_degree_sum = 200;
  Prediction p = pred.predict(in);
  EXPECT_TRUE(p.choose_rop);
  EXPECT_LT(p.c_rop, p.c_cop);
}

TEST(Predictor, DenseFrontierHitsAlphaShortcut) {
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kPaper,
                       0.05);
  PredictionInputs in = base_inputs();
  in.active_vertices = 100'000;  // 10 % of |V| > α = 5 %
  in.active_degree_sum = 1'600'000;
  Prediction p = pred.predict(in);
  EXPECT_FALSE(p.choose_rop);
  EXPECT_TRUE(p.alpha_shortcut);
}

TEST(Predictor, AlphaCanBeDisabledPerCall) {
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kPaper,
                       0.05);
  PredictionInputs in = base_inputs();
  in.active_vertices = 100'000;
  in.active_degree_sum = 100;  // absurdly cheap ROP
  Prediction p = pred.predict(in, /*use_alpha=*/false);
  EXPECT_FALSE(p.alpha_shortcut);
  EXPECT_TRUE(p.choose_rop);
}

TEST(Predictor, MidDensityComparesCosts) {
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kPaper,
                       0.05);
  PredictionInputs in = base_inputs();
  // ROP edge bytes above the column size => COP despite being under α.
  in.active_vertices = 40'000;  // 4 % < α
  in.active_degree_sum = 10'000'000;
  Prediction p = pred.predict(in);
  EXPECT_FALSE(p.alpha_shortcut);
  EXPECT_FALSE(p.choose_rop);
}

TEST(Predictor, SsdShiftsCrossoverTowardRop) {
  // A workload the HDD rejects (random I/O too dear) can be ROP-worthy on
  // SSD, where seeks are ~100x cheaper.
  PredictionInputs in = base_inputs();
  in.active_vertices = 30'000;
  in.active_degree_sum = 200'000;
  IoCostPredictor hdd(DeviceProfile::hdd7200(), PredictorFlavor::kPaper, 0.05);
  IoCostPredictor ssd(DeviceProfile::sata_ssd(), PredictorFlavor::kPaper, 0.05);
  EXPECT_FALSE(hdd.predict(in).choose_rop);
  EXPECT_TRUE(ssd.predict(in).choose_rop);
}

TEST(Predictor, DeviceExactUsesColumnBytes) {
  IoCostPredictor pred(DeviceProfile::hdd7200(), PredictorFlavor::kDeviceExact,
                       0.05);
  PredictionInputs in = base_inputs();
  in.active_vertices = 100;
  in.active_degree_sum = 2000;
  Prediction small_col = pred.predict(in);
  in.column_edge_bytes *= 10;
  Prediction big_col = pred.predict(in);
  EXPECT_GT(big_col.c_cop, small_col.c_cop);
  EXPECT_DOUBLE_EQ(big_col.c_rop, small_col.c_rop);
}

// --- ValueStore ---------------------------------------------------------------------

TEST(ValueStoreTest, MemoryModeSnapshotAndSwap) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("vs");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  ValueStore<int> vs(store.meta(), dir / "vals.tmp", /*file_backed=*/false,
                     nullptr);
  for (int i = 0; i < 8; ++i) vs.values()[i] = i;
  vs.snapshot_all();
  vs.values()[3] = 99;
  EXPECT_EQ(vs.prev()[3], 3);
  EXPECT_EQ(vs.values()[3], 99);
}

TEST(ValueStoreTest, FileBackedLoadIsLoadBearing) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("vs2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  IoStats io;
  ValueStore<int> vs(store.meta(), dir / "vals.tmp", /*file_backed=*/true,
                     &io);
  for (int i = 0; i < 8; ++i) vs.values()[i] = i * 10;
  vs.flush_all();
  // Clobber memory; load must restore from file.
  for (int i = 0; i < 8; ++i) vs.values()[i] = -1;
  vs.load_interval(0);
  vs.load_interval(1);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vs.values()[i], i * 10);
  EXPECT_GT(io.snapshot().seq_read_bytes, 0u);
  EXPECT_GT(io.snapshot().write_bytes, 0u);
}

TEST(ValueStoreTest, StoreIntervalPersists) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("vs3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  IoStats io;
  ValueStore<int> vs(store.meta(), dir / "vals.tmp", true, &io);
  for (int i = 0; i < 8; ++i) vs.values()[i] = 1;
  vs.flush_all();
  vs.values()[5] = 42;
  vs.store_interval(1);
  vs.values()[5] = 0;
  vs.load_interval(1);
  EXPECT_EQ(vs.values()[5], 42);
}

TEST(ValueStoreTest, DiscardLoadChargesWithoutClobbering) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("vs4");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  IoStats io;
  ValueStore<int> vs(store.meta(), dir / "vals.tmp", true, &io);
  for (int i = 0; i < 8; ++i) vs.values()[i] = 7;
  vs.flush_all();
  vs.values()[0] = 123;  // dirty, unstored
  IoSnapshot before = io.snapshot();
  vs.load_interval_discard(0);
  EXPECT_EQ(vs.values()[0], 123);  // not clobbered
  EXPECT_GT((io.snapshot() - before).seq_read_bytes, 0u);  // but charged
}

}  // namespace
}  // namespace husg
