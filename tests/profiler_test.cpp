// Tests for the §15 observability pillar (src/obs/profiler.{hpp,cpp}):
// the sampling CPU profiler (folded-stack output, span attribution,
// sample/drain concurrency), per-job CPU/wait attribution (UsageScope,
// charge_* helpers, scheduler integration), and ProfiledMutex lock-site
// accounting. Also exercised under TSan in CI — the seqlock drain and the
// atomic role/frame fields are the racy surfaces.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "service/scheduler.hpp"
#include "util/threadpool.hpp"

namespace husg::obs {
namespace {

/// Restores every §15 gate on scope exit so a failing test cannot leak an
/// armed profiler into unrelated tests in the same process.
struct GateGuard {
  ~GateGuard() {
    Profiler::instance().stop();
    Profiler::instance().clear();
    set_attribution(false);
    set_lock_profile(false);
  }
};

/// Burns CPU until `deadline` samples land (or a wall timeout passes) so
/// the CPU-clock timers actually fire. Returns samples observed.
std::uint64_t spin_until_samples(std::uint64_t want, int timeout_ms) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeout_ms);
  volatile double sink = 1.0;
  while (Profiler::instance().samples() < want &&
         std::chrono::steady_clock::now() < until) {
    for (int k = 0; k < 50'000; ++k) sink = sink * 1.0000001 + 0.5;
  }
  return Profiler::instance().samples();
}

// ---------------------------------------------------------------------------
// Sampling profiler.

TEST(ProfilerTest, DisarmedInvariants) {
  GateGuard guard;
  Profiler& prof = Profiler::instance();
  EXPECT_FALSE(prof.running());
  EXPECT_EQ(prof.hz(), 0u);

  // Spans and pool checkpoints with everything disarmed must not record or
  // allocate thread state.
  const std::size_t threads_before = prof.thread_count();
  for (int k = 0; k < 100; ++k) {
    HUSG_SPAN("test", "disarmed");
    Profiler::tick_current_thread();
  }
  EXPECT_EQ(prof.samples(), 0u);
  EXPECT_EQ(prof.thread_count(), threads_before);

  // Folded output with no samples is an empty document, not a crash.
  std::ostringstream os;
  prof.write_folded(os);
  EXPECT_TRUE(os.str().empty());

  // publish() is always-present: the families exist at zero.
  Registry reg;
  prof.publish(reg);
  std::ostringstream prom;
  reg.write_prometheus(prom);
  EXPECT_NE(prom.str().find("husg_cpu_profile_hz 0"), std::string::npos);
  EXPECT_NE(prom.str().find("husg_cpu_profile_samples 0"), std::string::npos);
}

TEST(ProfilerTest, SpinThreadAttributesSamplesToItsSpan) {
  GateGuard guard;
  Profiler& prof = Profiler::instance();
  prof.clear();
  ASSERT_TRUE(prof.start(997));  // high rate: keep the test fast
  EXPECT_FALSE(prof.start(97)) << "second start must report already-running";
  EXPECT_EQ(prof.hz(), 997u);

  std::atomic<bool> stop{false};
  std::thread burner([&] {
    Profiler::set_thread_role("burner");
    HUSG_SPAN("phase", "spin_outer");
    HUSG_SPAN("kernel", "spin_inner");
    volatile double sink = 1.0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int k = 0; k < 10'000; ++k) sink = sink * 1.0000001 + 0.5;
    }
  });
  // CPU-clock timers need real CPU time; wait for a healthy sample count.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (prof.samples() < 50 && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  burner.join();
  prof.stop();
  ASSERT_GE(prof.samples(), 50u) << "CPU timers never fired";

  std::ostringstream os;
  prof.write_folded(os);
  const std::string folded = os.str();

  // Folded-stack well-formedness: every line is `frames... count` with a
  // positive count and at least one frame.
  std::istringstream lines(folded);
  std::string line;
  std::uint64_t total = 0, burner_hits = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    const std::uint64_t count = std::stoull(line.substr(sp + 1));
    ASSERT_GT(count, 0u) << line;
    total += count;
    // The burner's samples must carry its role and its full span stack.
    if (line.rfind("burner;", 0) == 0) {
      EXPECT_NE(line.find("phase.spin_outer"), std::string::npos) << line;
      EXPECT_NE(line.find("kernel.spin_inner"), std::string::npos) << line;
      burner_hits += count;
    }
  }
  ASSERT_GT(total, 0u);
  // The burner is the only CPU-hot thread: >= 90% of all samples must land
  // on its annotated stack (the rest is this thread's polling loop).
  EXPECT_GE(static_cast<double>(burner_hits),
            0.90 * static_cast<double>(total))
      << folded;
}

TEST(ProfilerTest, ConcurrentSampleAndDrainYieldsNoTornStacks) {
  GateGuard guard;
  Profiler& prof = Profiler::instance();
  prof.clear();
  ASSERT_TRUE(prof.start(997));

  // Writers: churn spans fast so slots are rewritten while readers drain.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop] {
      Profiler::set_thread_role("churner");
      volatile double sink = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        HUSG_SPAN("churn", "outer");
        for (int k = 0; k < 200; ++k) {
          HUSG_SPAN("churn", "inner");
          sink = sink * 1.0000001 + 0.5;
        }
      }
    });
  }
  // Reader: drain concurrently; every line the seqlock lets through must be
  // a complete stack (no null frames, valid count). Torn slots are skipped
  // by the reader, never emitted.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  int drains = 0;
  while (std::chrono::steady_clock::now() < until &&
         (drains < 20 || prof.samples() < 20)) {
    std::ostringstream os;
    prof.write_folded(os);
    std::istringstream lines(os.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      const std::size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      for (const char c : line.substr(sp + 1)) ASSERT_TRUE(std::isdigit(c));
      // A churner stack is either role-only ("(no span)") or built from the
      // two frames the writers push — anything else is a torn read.
      if (line.rfind("churner;", 0) == 0) {
        const std::string stack = line.substr(0, sp);
        EXPECT_TRUE(stack == "churner;(no span)" ||
                    stack.find("churn.") != std::string::npos)
            << line;
      }
    }
    ++drains;
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  prof.stop();
  EXPECT_GE(drains, 20);
}

// ---------------------------------------------------------------------------
// Per-job CPU/wait attribution.

TEST(UsageScopeTest, ChargesCpuAndWaitsToBoundJob) {
  GateGuard guard;
  set_attribution(true);
  JobUsage usage;
  {
    UsageScope scope(&usage);
    EXPECT_EQ(current_usage(), &usage);
    charge_io_wait(5'000'000);
    charge_lock_wait(2'000'000);
    charge_decode(1'000'000);
    // Burn some real CPU so the thread-clock delta is visibly nonzero.
    volatile double sink = 1.0;
    for (int k = 0; k < 2'000'000; ++k) sink = sink * 1.0000001 + 0.5;
  }
  EXPECT_EQ(current_usage(), nullptr);
  const JobUsageSnapshot snap = snapshot_usage(usage);
  EXPECT_GT(snap.cpu_ns, 0u);
  EXPECT_EQ(snap.io_wait_ns, 5'000'000u);
  EXPECT_EQ(snap.lock_wait_ns, 2'000'000u);
  EXPECT_EQ(snap.decode_ns, 1'000'000u);
  EXPECT_TRUE(snap.any());

  // Unbound charges are dropped, not crashed on.
  charge_io_wait(1);
  EXPECT_EQ(usage.io_wait_ns.load(), 5'000'000u);

  // Nested null scope suspends attribution, restoring on exit.
  {
    UsageScope outer(&usage);
    {
      UsageScope suspend(nullptr);
      EXPECT_EQ(current_usage(), nullptr);
      charge_io_wait(7);
    }
    EXPECT_EQ(current_usage(), &usage);
  }
  EXPECT_EQ(usage.io_wait_ns.load(), 5'000'000u);
}

TEST(UsageScopeTest, DirectChargesLandEvenWhenDisarmed) {
  GateGuard guard;
  ASSERT_FALSE(attribution_enabled());
  JobUsage usage;
  {
    UsageScope scope(&usage);
    // The attribution gate lives at the instrumented call sites (TrackedFile,
    // the codec, ProfiledMutex) — the charge helpers themselves only check
    // for a bound job, so a direct call lands regardless.
    charge_io_wait(123);
    volatile double sink = 1.0;
    for (int k = 0; k < 2'000'000; ++k) sink = sink * 1.0000001 + 0.5;
  }
  EXPECT_EQ(usage.io_wait_ns.load(), 123u);
  // CPU is charged whenever a scope is bound — cheap and always useful.
  EXPECT_GT(usage.cpu_ns.load(), 0u);
}

TEST(SchedulerUsageTest, CpuJsonDecomposesJobWall) {
  GateGuard guard;
  set_attribution(true);
  ThreadPool pool(2);
  SchedulerOptions so;
  so.max_concurrent = 1;
  JobScheduler sched(
      pool, so, [&](const JobSpec&, JobId, const CancellationToken&) {
        charge_io_wait(3'000'000);
        charge_decode(1'000'000);
        volatile double sink = 1.0;
        for (int k = 0; k < 2'000'000; ++k) sink = sink * 1.0000001 + 0.5;
        return JobResult{};
      });
  JobSpec spec;
  spec.name = "usage-probe";
  spec.algo = ServiceAlgo::kPageRank;
  JobTicket t = sched.submit(spec, 100);
  ASSERT_TRUE(t.accepted);
  const JobResult r = t.result.get();
  EXPECT_EQ(r.status, JobStatus::kCompleted);
  EXPECT_GT(r.usage.cpu_ns, 0u) << "runner CPU must be charged to the job";
  EXPECT_EQ(r.usage.io_wait_ns, 3'000'000u);
  EXPECT_EQ(r.usage.decode_ns, 1'000'000u);
  sched.wait_idle();

  const std::string json = sched.cpu_json();
  EXPECT_NE(json.find("\"name\": \"usage-probe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"status\": \"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"io_wait_seconds\": 0.003"), std::string::npos);
  EXPECT_NE(json.find("\"queued_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"other_seconds\": "), std::string::npos);

  // Terminal usage also lands in the service ledger totals.
  const ServiceStats st = sched.stats();
  EXPECT_GE(st.usage_total.io_wait_ns, 3'000'000u);
  EXPECT_GT(st.usage_total.cpu_ns, 0u);
}

TEST(SchedulerUsageTest, EmptySchedulerServesEmptyCpuJson) {
  ThreadPool pool(2);
  JobScheduler sched(pool, SchedulerOptions{},
                     [](const JobSpec&, JobId, const CancellationToken&) {
                       return JobResult{};
                     });
  EXPECT_EQ(sched.cpu_json(), "{\"jobs\": []}\n");
}

TEST(ClassifyBoundTest, ThresholdsAndPrecedence) {
  JobUsageSnapshot u;
  EXPECT_STREQ(classify_bound(u, 0.0), "mixed");
  EXPECT_STREQ(classify_bound(u, 1.0), "mixed");

  u.io_wait_ns = 700'000'000;  // 70% of 1s wall
  EXPECT_STREQ(classify_bound(u, 1.0), "io-bound");

  u.lock_wait_ns = 300'000'000;  // lock >= 25% outranks io
  EXPECT_STREQ(classify_bound(u, 1.0), "lock-bound");

  u = {};
  u.cpu_ns = 900'000'000;
  EXPECT_STREQ(classify_bound(u, 1.0), "cpu-bound");
  // Decode is CPU time; a decode-dominated job is decode-bound, not
  // cpu-bound — attack the codec, not the scheduler.
  u.decode_ns = 500'000'000;
  EXPECT_STREQ(classify_bound(u, 1.0), "decode-bound");
}

// ---------------------------------------------------------------------------
// Lock-contention observability.

TEST(ProfiledMutexTest, DisarmedCountsNothing) {
  GateGuard guard;
  ProfiledMutex mu("test_disarmed_site");
  for (int k = 0; k < 10; ++k) {
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  const LockSiteStats s = mu.site()->stats();
  EXPECT_EQ(s.acquisitions, 0u) << "disarmed locks must not count";
  EXPECT_EQ(s.contended, 0u);
  EXPECT_EQ(s.wait_ns, 0u);
  EXPECT_EQ(s.hold_ns, 0u);
}

TEST(ProfiledMutexTest, ArmedMeasuresWaitUnderForcedContention) {
  GateGuard guard;
  set_lock_profile(true);
  set_attribution(true);
  ProfiledMutex mu("test_contended_site");

  // Holder pins the lock; the victim's blocking lock() must register a
  // contended acquisition with real wait time, charged to its bound job.
  std::atomic<bool> held{false};
  std::thread holder([&] {
    std::unique_lock<ProfiledMutex> lock(mu);
    held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!held.load()) std::this_thread::yield();

  JobUsage usage;
  {
    UsageScope scope(&usage);
    std::lock_guard<ProfiledMutex> lock(mu);
  }
  holder.join();

  const LockSiteStats s = mu.site()->stats();
  EXPECT_GE(s.acquisitions, 2u);
  EXPECT_GE(s.contended, 1u);
  // The victim waited ~50ms; allow generous slop for scheduling noise.
  EXPECT_GE(s.wait_ns, 10'000'000u);
  EXPECT_GT(s.hold_ns, 0u);
  EXPECT_GE(usage.lock_wait_ns.load(), 10'000'000u)
      << "lock wait must be charged to the bound job";

  // The registry exports the site and the top-locks JSON ranks it.
  Registry reg;
  LockRegistry::instance().publish(reg);
  std::ostringstream prom;
  reg.write_prometheus(prom);
  EXPECT_NE(prom.str().find("husg_lock_sites"), std::string::npos);
  EXPECT_NE(prom.str().find("test_contended_site"), std::string::npos);

  std::ostringstream top;
  LockRegistry::instance().write_top_json(top);
  EXPECT_NE(top.str().find("\"name\":\"test_contended_site\""),
            std::string::npos)
      << top.str();
}

TEST(ProfiledMutexTest, WorksWithConditionVariableAny) {
  GateGuard guard;
  set_lock_profile(true);
  ProfiledMutex mu("test_cv_site");
  std::condition_variable_any cv;
  bool flag = false;
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      std::lock_guard<ProfiledMutex> lock(mu);
      flag = true;
    }
    cv.notify_one();
  });
  {
    std::unique_lock<ProfiledMutex> lock(mu);
    cv.wait(lock, [&] { return flag; });
  }
  setter.join();
  EXPECT_GE(mu.site()->stats().acquisitions, 2u);
}

}  // namespace
}  // namespace husg::obs
