// I/O backend subsystem: sync/uring equivalence, O_DIRECT alignment edges,
// batch cancellation, runtime detection and the engine-level byte-identity
// guarantee. Every uring case self-skips on kernels that deny io_uring, so
// the suite is green everywhere and exercises the ring where it exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "husg/husg.hpp"
#include "io/backend/aligned.hpp"
#include "io/backend/io_backend.hpp"
#include "obs/iotrace.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

/// Writes `n` pseudo-random bytes (fixed seed) and returns them.
std::vector<char> write_pattern(const std::filesystem::path& path,
                                std::size_t n) {
  std::vector<char> bytes(n);
  std::mt19937 rng(1234);
  for (char& c : bytes) c = static_cast<char>(rng());
  File f(path, File::Mode::kWrite);
  f.pwrite_exact(bytes.data(), bytes.size(), 0);
  return bytes;
}

std::unique_ptr<IoBackend> uring_or_skip(std::uint32_t queue_depth) {
  if (!uring_available()) return nullptr;  // caller GTEST_SKIPs
  return make_io_backend(
      IoBackendConfig{IoBackendKind::kUring, queue_depth, false});
}

TEST(IoBackendParse, RoundTripAndRejects) {
  IoBackendKind kind;
  ASSERT_TRUE(parse_io_backend("sync", &kind));
  EXPECT_EQ(kind, IoBackendKind::kSync);
  ASSERT_TRUE(parse_io_backend("uring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kUring);
  ASSERT_TRUE(parse_io_backend("auto", &kind));
  EXPECT_EQ(kind, IoBackendKind::kAuto);
  EXPECT_FALSE(parse_io_backend("mmap", &kind));
  EXPECT_FALSE(parse_io_backend("", &kind));
  EXPECT_STREQ(to_string(IoBackendKind::kSync), "sync");
  EXPECT_STREQ(to_string(IoBackendKind::kUring), "uring");
  EXPECT_STREQ(to_string(IoBackendKind::kAuto), "auto");
}

TEST(IoBackendConfigTest, QueueDepthBoundsEnforced) {
  EXPECT_THROW(
      make_io_backend(IoBackendConfig{IoBackendKind::kSync, 0, false}),
      DataError);
  EXPECT_THROW(make_io_backend(IoBackendConfig{IoBackendKind::kSync,
                                               kMaxQueueDepth + 1, false}),
               DataError);
  auto be = make_io_backend(
      IoBackendConfig{IoBackendKind::kSync, kMaxQueueDepth, false});
  EXPECT_EQ(be->kind(), IoBackendKind::kSync);
}

TEST(IoBackendSync, ReadMatchesFileContents) {
  ScratchDir dir("iobe_sync");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 8192);
  File f(dir / "data.bin", File::Mode::kRead);
  const IoBackend& be = default_sync_backend();
  EXPECT_EQ(be.kind(), IoBackendKind::kSync);
  EXPECT_EQ(be.queue_depth(), 1u);
  std::vector<char> got(1000);
  be.read(f.fd(), got.data(), got.size(), 37);
  EXPECT_EQ(0, std::memcmp(got.data(), bytes.data() + 37, got.size()));
}

TEST(IoBackendSync, BatchEqualsIndividualReads) {
  ScratchDir dir("iobe_batch");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 64 * 1024);
  File f(dir / "data.bin", File::Mode::kRead);
  const IoBackend& be = default_sync_backend();

  // Odd offsets and lengths on purpose; plus a zero-length op, which the
  // batch must tolerate (the engine's empty CSR ranges never reach the
  // backend, but the base-class contract skips them regardless).
  std::vector<char> out(5000);
  std::vector<IoReadOp> ops = {
      {out.data(), 999, 17},
      {out.data() + 999, 0, 0},
      {out.data() + 1000, 2048, 40000},
      {out.data() + 3048, 1, 65535},
  };
  be.read_batch(f.fd(), ops.data(), ops.size());
  EXPECT_EQ(0, std::memcmp(out.data(), bytes.data() + 17, 999));
  EXPECT_EQ(0, std::memcmp(out.data() + 1000, bytes.data() + 40000, 2048));
  EXPECT_EQ(out[3048], bytes[65535]);
}

TEST(IoBackendSync, ShortReadThrows) {
  ScratchDir dir("iobe_short");
  write_pattern(dir / "data.bin", 100);
  File f(dir / "data.bin", File::Mode::kRead);
  std::vector<char> buf(64);
  EXPECT_THROW(default_sync_backend().read(f.fd(), buf.data(), 64, 90),
               IoError);
}

TEST(IoBackendSync, CountersAdvance) {
  ScratchDir dir("iobe_count");
  write_pattern(dir / "data.bin", 4096);
  File f(dir / "data.bin", File::Mode::kRead);
  IoBackendTotals before = io_backend_totals();
  std::vector<char> out(300);
  IoReadOp ops[3] = {
      {out.data(), 100, 0}, {out.data() + 100, 100, 500},
      {out.data() + 200, 100, 1000}};
  default_sync_backend().read_batch(f.fd(), ops, 3);
  IoBackendTotals after = io_backend_totals();
  EXPECT_EQ(after.batches, before.batches + 1);
  EXPECT_EQ(after.reads_submitted, before.reads_submitted + 3);
  EXPECT_EQ(after.reads_completed, before.reads_completed + 3);
}

// --- O_DIRECT alignment -----------------------------------------------------

TEST(AlignedPool, AlignmentHelpers) {
  EXPECT_EQ(align_down(0, 4096), 0u);
  EXPECT_EQ(align_down(4095, 4096), 0u);
  EXPECT_EQ(align_down(4096, 4096), 4096u);
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_up(4097, 4096), 8192u);
}

TEST(AlignedPool, LeasesAreAlignedAndReused) {
  AlignedBufferPool& pool = AlignedBufferPool::instance();
  const char* first;
  {
    AlignedBufferPool::Lease lease = pool.acquire(10000);
    ASSERT_TRUE(lease);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease.data()) % kDirectIoAlign,
              0u);
    EXPECT_GE(lease.capacity(), 10000u);
    first = lease.data();
  }
  AlignedBufferPool::Lease again = pool.acquire(10000);
  EXPECT_EQ(again.data(), first);  // returned slot is recycled
}

TEST(DirectIo, UnalignedReadsThroughDirectFile) {
  ScratchDir dir("iobe_direct");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 3 * 4096 + 123);
  File f(dir / "data.bin", File::Mode::kRead, /*direct=*/true);
  // tmpfs refuses O_DIRECT: the open falls back to buffered, read_align()
  // goes to 0, and the test still checks the exact-bytes contract.
  const std::uint32_t align = f.read_align();
  const IoBackend& be = default_sync_backend();
  struct Case {
    std::size_t len;
    std::uint64_t off;
  } cases[] = {
      {1, 0},          // tiny at start
      {1, 4095},       // crosses nothing, ends on the boundary
      {2, 4095},       // straddles one boundary
      {4096, 1},       // shifted full block
      {8192, 4096},    // aligned both ends
      {123, 3 * 4096}, // the EOF tail (rounded-up bounce past EOF)
  };
  for (const Case& c : cases) {
    std::vector<char> got(c.len, 0);
    be.read(f.fd(), got.data(), c.len, c.off, align);
    EXPECT_EQ(0, std::memcmp(got.data(), bytes.data() + c.off, c.len))
        << "len=" << c.len << " off=" << c.off;
  }
}

// --- uring ------------------------------------------------------------------

TEST(UringBackend, RequestedButUnavailableThrows) {
  if (uring_available()) {
    GTEST_SKIP() << "io_uring works here; the CLI covers the happy path";
  }
  EXPECT_THROW(
      make_io_backend(IoBackendConfig{IoBackendKind::kUring, 8, false}),
      IoError);
}

TEST(UringBackend, AutoNeverThrows) {
  auto be =
      make_io_backend(IoBackendConfig{IoBackendKind::kAuto, 16, false});
  ASSERT_NE(be, nullptr);
  if (uring_available()) {
    EXPECT_EQ(be->kind(), IoBackendKind::kUring);
  } else {
    EXPECT_EQ(be->kind(), IoBackendKind::kSync);
    EXPECT_GT(io_backend_totals().uring_fallbacks, 0u);
  }
}

TEST(UringBackend, ReadsMatchSync) {
  auto be = uring_or_skip(8);
  if (!be) GTEST_SKIP() << "io_uring unavailable";
  ScratchDir dir("iobe_uring");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 128 * 1024);
  File f(dir / "data.bin", File::Mode::kRead);
  std::vector<char> got(9000);
  be->read(f.fd(), got.data(), got.size(), 12345);
  EXPECT_EQ(0, std::memcmp(got.data(), bytes.data() + 12345, got.size()));
}

TEST(UringBackend, BatchDeeperThanRing) {
  // 128 ops through a queue depth of 4: the backlog has to recycle SQEs
  // across many enter() rounds and still complete every op exactly once.
  auto be = uring_or_skip(4);
  if (!be) GTEST_SKIP() << "io_uring unavailable";
  ScratchDir dir("iobe_deep");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 256 * 1024);
  File f(dir / "data.bin", File::Mode::kRead);
  constexpr std::size_t kOps = 128, kLen = 1000;
  std::vector<char> out(kOps * kLen);
  std::vector<IoReadOp> ops(kOps);
  for (std::size_t k = 0; k < kOps; ++k) {
    ops[k] = IoReadOp{out.data() + k * kLen, kLen, k * 2000 + 7};
  }
  IoBackendTotals before = io_backend_totals();
  be->read_batch(f.fd(), ops.data(), ops.size());
  IoBackendTotals after = io_backend_totals();
  EXPECT_EQ(after.reads_completed, before.reads_completed + kOps);
  for (std::size_t k = 0; k < kOps; ++k) {
    ASSERT_EQ(0,
              std::memcmp(out.data() + k * kLen, bytes.data() + k * 2000 + 7,
                          kLen))
        << "op " << k;
  }
}

TEST(UringBackend, DroppedPendingDrainsRing) {
  auto be = uring_or_skip(8);
  if (!be) GTEST_SKIP() << "io_uring unavailable";
  ScratchDir dir("iobe_drop");
  std::vector<char> bytes = write_pattern(dir / "data.bin", 64 * 1024);
  File f(dir / "data.bin", File::Mode::kRead);
  std::vector<char> out(32 * 512);
  std::vector<IoReadOp> ops(32);
  for (std::size_t k = 0; k < ops.size(); ++k) {
    ops[k] = IoReadOp{out.data() + k * 512, 512, k * 512};
  }
  IoBackendTotals before = io_backend_totals();
  {
    auto pending = be->start_batch(f.fd(), ops.data(), ops.size());
    // Dropped without wait(): the destructor must reap every in-flight
    // completion out of the ring (queued-but-unsubmitted backlog ops are
    // simply discarded), or the next batch would reap stale user_data.
  }
  IoBackendTotals after = io_backend_totals();
  // The ring's full depth was in flight and all of it drained.
  EXPECT_GE(after.reads_completed, before.reads_completed + 8);
  // The ring is clean: a fresh full-size batch completes every op with the
  // right bytes — stale completions or leaked inflight slots would wedge or
  // corrupt it.
  std::fill(out.begin(), out.end(), 0);
  be->read_batch(f.fd(), ops.data(), ops.size());
  EXPECT_EQ(0, std::memcmp(out.data(), bytes.data(), out.size()));
}

TEST(UringBackend, ShortReadAtEofFails) {
  auto be = uring_or_skip(8);
  if (!be) GTEST_SKIP() << "io_uring unavailable";
  ScratchDir dir("iobe_eof");
  write_pattern(dir / "data.bin", 100);
  File f(dir / "data.bin", File::Mode::kRead);
  std::vector<char> buf(64);
  EXPECT_THROW(be->read(f.fd(), buf.data(), 64, 90), IoError);
}

// --- engine-level byte identity ---------------------------------------------

template <class Result>
void expect_exact_values(const Result& a, const Result& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t v = 0; v < a.values.size(); ++v) {
    // Bitwise float equality on purpose: the backends must not reorder the
    // update stream.
    EXPECT_EQ(a.values[v], b.values[v]) << "vertex " << v;
  }
}

TEST(EngineBackendIdentity, PageRankSyncVsUring) {
  if (!uring_available()) GTEST_SKIP() << "io_uring unavailable";
  EdgeList g = gen::rmat(10, 8.0, /*seed=*/7);
  ScratchDir dir("iobe_engine");
  DualBlockStore::build(g, dir.path(), StoreOptions{4});

  auto run = [&](IoBackendKind kind, UpdateMode mode) {
    DualBlockStore store = DualBlockStore::open(
        dir.path(), IoBackendConfig{kind, 16, false});
    EngineOptions eo;
    eo.mode = mode;
    eo.threads = 3;
    eo.max_iterations = 6;
    Engine engine(store, eo);
    PageRankProgram pr;
    return engine.run(pr,
                      Frontier::all(store.meta(), store.out_degrees()));
  };
  for (UpdateMode mode : {UpdateMode::kRop, UpdateMode::kCop}) {
    auto sync_r = run(IoBackendKind::kSync, mode);
    auto uring_r = run(IoBackendKind::kUring, mode);
    expect_exact_values(sync_r, uring_r);
    // I/O accounting is charged per logical op, so the stats ledgers agree
    // byte for byte too.
    EXPECT_EQ(sync_r.stats.total_io.seq_read_bytes,
              uring_r.stats.total_io.seq_read_bytes);
    EXPECT_EQ(sync_r.stats.total_io.rand_read_bytes,
              uring_r.stats.total_io.rand_read_bytes);
    EXPECT_EQ(sync_r.stats.total_io.rand_read_ops,
              uring_r.stats.total_io.rand_read_ops);
  }
}

TEST(EngineBackendIdentity, BfsDirectVsBuffered) {
  EdgeList g = gen::rmat(9, 6.0, /*seed=*/3);
  ScratchDir dir("iobe_direct_engine");
  DualBlockStore::build(g, dir.path(), StoreOptions{4});
  auto run = [&](bool direct) {
    DualBlockStore store = DualBlockStore::open(
        dir.path(), IoBackendConfig{IoBackendKind::kSync, 1, direct});
    EngineOptions eo;
    eo.threads = 2;
    Engine engine(store, eo);
    BfsProgram bfs{.source = 0};
    return engine.run(
        bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  };
  auto buffered = run(false);
  auto direct = run(true);  // tmpfs may deny O_DIRECT; fallback is the point
  expect_exact_values(buffered, direct);
}

// --- predictor profile specialization ---------------------------------------

TEST(DeviceBackendProfile, SyncKeepsProfileBitIdentical) {
  DeviceProfile dev = DeviceProfile::hdd7200();
  DeviceProfile same = dev.for_backend(IoBackendKind::kSync, 64);
  EXPECT_EQ(same.seek_seconds, dev.seek_seconds);
  EXPECT_EQ(same.seq_read_bw, dev.seq_read_bw);
  EXPECT_EQ(same.rand_read_bw, dev.rand_read_bw);
  EXPECT_EQ(same.name, dev.name);
}

TEST(DeviceBackendProfile, UringDividesSeekAcrossLanes) {
  DeviceProfile nvme = DeviceProfile::nvme_ssd();
  ASSERT_GT(nvme.queue_lanes, 1u);
  DeviceProfile tuned = nvme.for_backend(IoBackendKind::kUring, 64);
  std::uint32_t lanes = std::min(64u, nvme.queue_lanes);
  EXPECT_DOUBLE_EQ(tuned.seek_seconds, nvme.seek_seconds / lanes);
  EXPECT_NE(tuned.name, nvme.name);
  // Depth 1 buys no overlap: profile unchanged.
  DeviceProfile qd1 = nvme.for_backend(IoBackendKind::kUring, 1);
  EXPECT_EQ(qd1.seek_seconds, nvme.seek_seconds);
  // HDDs have one head: uring cannot parallelize the seek.
  DeviceProfile hdd = DeviceProfile::hdd7200();
  DeviceProfile hdd_uring = hdd.for_backend(IoBackendKind::kUring, 64);
  EXPECT_EQ(hdd_uring.seek_seconds, hdd.seek_seconds);
}

// --- iotrace backend field ---------------------------------------------------

TEST(IoTraceBackend, HeaderRoundTripsBackendKind) {
  ScratchDir dir("iobe_trace");
  std::string path = (dir / "t.bin").string();
  obs::TraceRunInfo info;
  info.p = 2;
  info.backend = static_cast<std::uint8_t>(IoBackendKind::kUring);
  obs::IoTrace& t = obs::IoTrace::instance();
  t.start(path, info);
  t.stop();
  obs::TraceFile loaded = obs::load_trace(path);
  EXPECT_EQ(loaded.info.backend,
            static_cast<std::uint8_t>(IoBackendKind::kUring));
}

}  // namespace
}  // namespace husg
