#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "obs/audit.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace husg {
namespace {

using obs::Histogram;
using obs::Tracer;

// --- Histogram -----------------------------------------------------------------

TEST(Histogram, BucketIndexRoundTrips) {
  // Every value must land in a bucket whose [lower, upper] range contains it.
  std::vector<std::uint64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                       100, 1000, 4095, 4096, 1u << 20};
  values.push_back(std::uint64_t{1} << 40);
  values.push_back(std::numeric_limits<std::uint64_t>::max());
  for (std::uint64_t v : values) {
    std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBuckets) << "value " << v;
    EXPECT_LE(Histogram::bucket_lower(idx), v) << "value " << v;
    EXPECT_GE(Histogram::bucket_upper(idx), v) << "value " << v;
  }
}

TEST(Histogram, BucketBoundariesAreContiguous) {
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_lower(i), Histogram::bucket_upper(i - 1) + 1)
        << "bucket " << i;
  }
}

TEST(Histogram, QuantilesMatchSortedVectorOracle) {
  // Log-normal-ish latencies: the relative quantile error must stay within
  // one sub-bucket width (25%) of the exact order statistic.
  SplitMix64 rng(7);
  Histogram hist;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.next_double();
    auto v = static_cast<std::uint64_t>(std::exp(4 + 8 * u)) + 1;
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, values.size());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    double exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    double approx = snap.quantile(q);
    EXPECT_LE(std::abs(approx - exact) / exact, 0.30)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  // Extremes are tracked exactly, not bucketed.
  EXPECT_DOUBLE_EQ(snap.min_value(), static_cast<double>(values.front()));
  EXPECT_DOUBLE_EQ(snap.max_value(), static_cast<double>(values.back()));
}

TEST(Histogram, ScaleConvertsExportedUnits) {
  Histogram hist(1e-9);  // records ns, exports seconds
  hist.record(2'000'000'000);
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_DOUBLE_EQ(snap.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.min_value(), 2.0);
  EXPECT_NEAR(snap.quantile(0.5), 2.0, 0.5);
}

TEST(Histogram, EmptySnapshotIsZero) {
  Histogram hist;
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
}

// --- Concurrency ----------------------------------------------------------------

TEST(Metrics, ConcurrentIncrementsAreLossless) {
  obs::Registry reg;
  obs::Counter& counter = reg.counter("test_ops_total", "ops");
  obs::Histogram& hist = reg.histogram("test_latency", "lat");
  constexpr std::size_t kPerTask = 1000;
  constexpr std::size_t kTasks = 64;
  ThreadPool pool(8);
  pool.parallel_for(kTasks, 1, [&](std::size_t t) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      counter.inc();
      hist.record(t * kPerTask + i + 1);
    }
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  EXPECT_EQ(hist.snapshot().count, kTasks * kPerTask);
}

// --- Registry / Prometheus export ----------------------------------------------

TEST(Registry, SameNameReturnsSameMetric) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total", "x");
  obs::Counter& b = reg.counter("x_total", "x");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("husg_test_ops_total", "Operations").inc(42);
  reg.gauge("husg_test_level", "Level").set(1.5);
  obs::Histogram& h = reg.histogram("husg_test_seconds", "Latency", 1e-9);
  h.record(1000);
  h.record(2000);
  std::ostringstream os;
  reg.write_prometheus(os);
  std::string text = os.str();
  EXPECT_NE(text.find("# TYPE husg_test_ops_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("husg_test_ops_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE husg_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE husg_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("husg_test_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("husg_test_seconds_count 2"), std::string::npos);
}

TEST(Registry, ConcurrentRegisterAndScrape) {
  // The admin server's /metrics handler scrapes the registry while engine
  // threads are still registering and bumping metrics; this races
  // registration, mutation, and write_prometheus under TSan.
  obs::Registry reg;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kMetricsPerWriter = 32;
  ThreadPool pool(kWriters + 2);
  pool.parallel_for(kWriters + 2, 1, [&](std::size_t t) {
    if (t >= kWriters) {  // two scrapers
      for (int round = 0; round < 50; ++round) {
        std::ostringstream os;
        reg.write_prometheus(os);
        EXPECT_TRUE(os.str().empty() ||
                    os.str().find("# TYPE") != std::string::npos);
      }
      return;
    }
    for (std::size_t k = 0; k < kMetricsPerWriter; ++k) {
      std::string tag = std::to_string(t) + "_" + std::to_string(k);
      reg.counter("race_ops_" + tag + "_total", "ops").inc(k + 1);
      reg.gauge("race_level_" + tag, "level").set(static_cast<double>(k));
      reg.histogram("race_lat_" + tag, "lat").record(k + 1);
    }
  });
  // Every registration survived the race and exports cleanly.
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  for (std::size_t t = 0; t < kWriters; ++t) {
    for (std::size_t k = 0; k < kMetricsPerWriter; ++k) {
      std::string tag = std::to_string(t) + "_" + std::to_string(k);
      EXPECT_NE(text.find("race_ops_" + tag + "_total " +
                          std::to_string(k + 1)),
                std::string::npos);
    }
  }
}

// --- Tracer ---------------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  {
    HUSG_SPAN("test", "noop");
    obs::Span manual("test", "noop2");
  }
  tracer.record("test", "direct", 0, 1);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.thread_buffer_count(), 0u);
}

TEST(Tracer, CapturesNestedSpansWithMonotonicTimestamps) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  {
    HUSG_SPAN("test", "outer", "i", 1);
    for (int i = 0; i < 3; ++i) {
      HUSG_SPAN("test", "inner", "i", i);
    }
  }
  tracer.stop();
  std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Sorted by start time; the outer span starts first and contains the rest.
  EXPECT_STREQ(events[0].name, "outer");
  std::uint64_t outer_end = events[0].start_ns + events[0].dur_ns;
  std::uint64_t prev_start = 0;
  for (const obs::TraceEvent& e : events) {
    EXPECT_GE(e.start_ns, prev_start);
    prev_start = e.start_ns;
    EXPECT_LE(e.start_ns + e.dur_ns, outer_end);
  }
  EXPECT_EQ(events[1].arg1, 0);
  EXPECT_EQ(events[3].arg1, 2);
  tracer.clear();
}

TEST(Tracer, ChromeJsonIsBalancedAndParseable) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  ThreadPool pool(4);
  pool.parallel_for(16, 1, [&](std::size_t i) {
    HUSG_SPAN("test", "task", "i", static_cast<std::int64_t>(i));
  });
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 16u);
  std::ostringstream os;
  tracer.write_chrome_json(os);
  std::string json = os.str();
  tracer.clear();
  // Structural well-formedness: balanced braces/brackets, one complete
  // ("ph":"X") event per span, no trailing comma before a closer.
  std::int64_t braces = 0, brackets = 0;
  std::size_t events = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
    if (c == ',') {
      std::size_t j = json.find_first_not_of(" \n\t", i + 1);
      ASSERT_NE(json[j], '}');
      ASSERT_NE(json[j], ']');
    }
    if (json.compare(i, 9, "\"ph\": \"X\"") == 0 ||
        json.compare(i, 8, "\"ph\":\"X\"") == 0) {
      ++events;
    }
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(events, 16u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(Tracer, RingDropsOldestAndCounts) {
  Tracer& tracer = Tracer::instance();
  tracer.start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.record("test", "e", static_cast<std::uint64_t>(i), 1, "i", i);
  }
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The survivors are the most recent records.
  std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().arg1, 12);
  EXPECT_EQ(events.back().arg1, 19);
  tracer.clear();
}

// --- LatencySummary -------------------------------------------------------------

TEST(LatencySummary, FromSnapshot) {
  Histogram hist(1e-9);
  for (int i = 1; i <= 100; ++i) {
    hist.record(static_cast<std::uint64_t>(i) * 1'000'000);  // 1..100 ms
  }
  obs::LatencySummary s = obs::LatencySummary::from(hist.snapshot());
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min_seconds, 0.001);
  EXPECT_DOUBLE_EQ(s.max_seconds, 0.100);
  EXPECT_NEAR(s.mean_seconds, 0.0505, 1e-4);
  EXPECT_NEAR(s.p50_seconds, 0.050, 0.015);
  EXPECT_NEAR(s.p95_seconds, 0.095, 0.025);
  EXPECT_GE(s.p99_seconds, s.p95_seconds);
  EXPECT_LE(s.p99_seconds, s.max_seconds);
}

// --- Predictor audit ------------------------------------------------------------

RunStats make_run(double c_rop, double c_cop, bool used_rop,
                  std::uint64_t seq_bytes) {
  RunStats stats;
  IterationStats it;
  it.iteration = 0;
  DecisionRecord d;
  d.interval = 0;
  d.prediction.c_rop = c_rop;
  d.prediction.c_cop = c_cop;
  d.used_rop = used_rop;
  d.observed = true;
  d.observed_io.seq_read_bytes = seq_bytes;
  d.observed_wall_seconds = 0.5;
  it.decisions.push_back(d);
  stats.iterations.push_back(it);
  return stats;
}

TEST(PredictorAudit, RelativeErrorAgainstObservedTraffic) {
  // Device: 100 B/s sequential => 100 bytes price at exactly 1 s.
  DeviceProfile dev;
  dev.seq_read_bw = 100;
  // Prediction 2 s vs observation 1 s: symmetric rel error = 1/2.
  RunStats stats = make_run(2.0, 9.0, /*used_rop=*/true, /*seq_bytes=*/100);
  obs::PredictorAudit audit = obs::PredictorAudit::from_run(stats, dev);
  ASSERT_EQ(audit.entries().size(), 1u);
  const obs::AuditEntry& e = audit.entries()[0];
  EXPECT_TRUE(e.evaluated);
  EXPECT_TRUE(e.chose_rop);
  EXPECT_DOUBLE_EQ(e.observed_seconds, 1.0);
  EXPECT_DOUBLE_EQ(e.rel_error, 0.5);
  obs::AuditSummary s = audit.summarize();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evaluated, 1u);
  EXPECT_DOUBLE_EQ(s.mean_rel_error, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_rel_error_rop, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_rel_error_cop, 0.0);
}

TEST(PredictorAudit, AlphaShortcutEntriesExcludedFromMeans) {
  DeviceProfile dev;
  dev.seq_read_bw = 100;
  RunStats stats = make_run(0.0, 0.0, /*used_rop=*/false, /*seq_bytes=*/100);
  stats.iterations[0].decisions[0].prediction.alpha_shortcut = true;
  obs::PredictorAudit audit = obs::PredictorAudit::from_run(stats, dev);
  ASSERT_EQ(audit.entries().size(), 1u);
  EXPECT_FALSE(audit.entries()[0].evaluated);
  obs::AuditSummary s = audit.summarize();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.evaluated, 0u);
  EXPECT_DOUBLE_EQ(s.mean_rel_error, 0.0);
}

TEST(PredictorAudit, CsvHasHeaderAndOneRowPerEntry) {
  DeviceProfile dev;
  dev.seq_read_bw = 100;
  RunStats stats = make_run(1.0, 2.0, true, 100);
  obs::PredictorAudit audit = obs::PredictorAudit::from_run(stats, dev);
  std::ostringstream os;
  audit.write_csv(os);
  std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_EQ(csv.find("iteration,interval,"), 0u);
}

}  // namespace
}  // namespace husg
