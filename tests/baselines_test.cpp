// Baseline engines (GraphChi-like, GridGraph-like, X-Stream-like,
// FlashGraph-like) must reach the same fixed points as the reference oracles, and exhibit the I/O
// behaviours the paper attributes to them.
#include <gtest/gtest.h>

#include "baselines/flashgraph/flash_engine.hpp"
#include "baselines/graphchi/chi_engine.hpp"
#include "baselines/gridgraph/grid_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "algos/bfs.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "algos/wcc.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using baselines::BaselineResult;
using baselines::ChiEngine;
using baselines::ChiStore;
using baselines::GridEngine;
using baselines::GridStore;
using baselines::StartSet;
using baselines::XStreamEngine;
using baselines::XStreamStore;
using testing::ScratchDir;

class BaselineSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BaselineSweep, GridBfsMatchesReference) {
  EdgeList g = gen::rmat(9, 6.0, 42);
  ScratchDir dir("gbfs");
  auto store = GridStore::build(g, dir.path(), GetParam());
  GridEngine engine(store, GridEngine::Options{});
  BfsProgram bfs{.source = 1};
  auto r = engine.run(bfs, StartSet::single(1));
  auto want = ref::bfs_levels(g, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]) << "vertex " << v;
  }
}

TEST_P(BaselineSweep, ChiBfsMatchesReference) {
  EdgeList g = gen::rmat(9, 6.0, 42);
  ScratchDir dir("cbfs");
  auto store = ChiStore::build(g, dir.path(), GetParam());
  ChiEngine engine(store, ChiEngine::Options{});
  BfsProgram bfs{.source = 1};
  auto r = engine.run(bfs, StartSet::single(1));
  auto want = ref::bfs_levels(g, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]) << "vertex " << v;
  }
}

TEST_P(BaselineSweep, XsBfsMatchesReference) {
  EdgeList g = gen::rmat(9, 6.0, 42);
  ScratchDir dir("xbfs");
  auto store = XStreamStore::build(g, dir.path(), GetParam());
  XStreamEngine engine(store, XStreamEngine::Options{});
  BfsProgram bfs{.source = 1};
  auto r = engine.run(bfs, StartSet::single(1));
  auto want = ref::bfs_levels(g, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, BaselineSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(GridEngineTest, WccMatchesReference) {
  EdgeList g = gen::erdos_renyi(300, 600, 7).symmetrized();
  ScratchDir dir("gwcc");
  auto store = GridStore::build(g, dir.path(), 4);
  GridEngine engine(store, GridEngine::Options{});
  WccProgram wcc;
  auto r = engine.run(wcc, StartSet::all());
  auto want = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]);
  }
}

TEST(ChiEngineTest, WccMatchesReference) {
  EdgeList g = gen::erdos_renyi(300, 600, 7).symmetrized();
  ScratchDir dir("cwcc");
  auto store = ChiStore::build(g, dir.path(), 4);
  ChiEngine engine(store, ChiEngine::Options{});
  WccProgram wcc;
  auto r = engine.run(wcc, StartSet::all());
  auto want = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]);
  }
}

TEST(XsEngineTest, WccMatchesReference) {
  EdgeList g = gen::erdos_renyi(300, 600, 7).symmetrized();
  ScratchDir dir("xwcc");
  auto store = XStreamStore::build(g, dir.path(), 4);
  XStreamEngine engine(store, XStreamEngine::Options{});
  WccProgram wcc;
  auto r = engine.run(wcc, StartSet::all());
  auto want = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.values[v], want[v]);
  }
}

TEST(GridEngineTest, SsspMatchesReference) {
  EdgeList g = gen::with_random_weights(gen::rmat(8, 8.0, 5), 5);
  ScratchDir dir("gsssp");
  auto store = GridStore::build(g, dir.path(), 4);
  ASSERT_TRUE(store.meta().weighted);
  GridEngine engine(store, GridEngine::Options{});
  SsspProgram sssp{.source = 3};
  auto r = engine.run(sssp, StartSet::single(3));
  auto want = ref::sssp_distances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(r.values[v]));
    } else {
      EXPECT_NEAR(r.values[v], want[v], 1e-4);
    }
  }
}

TEST(ChiEngineTest, SsspMatchesReference) {
  EdgeList g = gen::with_random_weights(gen::rmat(8, 8.0, 5), 5);
  ScratchDir dir("csssp");
  auto store = ChiStore::build(g, dir.path(), 4);
  ChiEngine engine(store, ChiEngine::Options{});
  SsspProgram sssp{.source = 3};
  auto r = engine.run(sssp, StartSet::single(3));
  auto want = ref::sssp_distances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!std::isinf(want[v])) {
      EXPECT_NEAR(r.values[v], want[v], 1e-4);
    }
  }
}

TEST(XsEngineTest, SsspMatchesReference) {
  EdgeList g = gen::with_random_weights(gen::rmat(8, 8.0, 5), 5);
  ScratchDir dir("xsssp");
  auto store = XStreamStore::build(g, dir.path(), 4);
  XStreamEngine engine(store, XStreamEngine::Options{});
  SsspProgram sssp{.source = 3};
  auto r = engine.run(sssp, StartSet::single(3));
  auto want = ref::sssp_distances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!std::isinf(want[v])) {
      EXPECT_NEAR(r.values[v], want[v], 1e-4);
    }
  }
}

// --- PageRank ------------------------------------------------------------------

TEST(GridEngineTest, PageRankMatchesJacobiReference) {
  EdgeList g = gen::rmat(8, 7.0, 11);
  ScratchDir dir("gpr");
  auto store = GridStore::build(g, dir.path(), 4);
  GridEngine::Options opts;
  opts.max_iterations = 5;
  GridEngine engine(store, opts);
  PageRankProgram pr;
  auto r = engine.run(pr, StartSet::all());
  auto want = ref::pagerank(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.values[v], want[v], 1e-3);
  }
}

TEST(XsEngineTest, PageRankMatchesJacobiReference) {
  EdgeList g = gen::rmat(8, 7.0, 11);
  ScratchDir dir("xpr");
  auto store = XStreamStore::build(g, dir.path(), 4);
  XStreamEngine::Options opts;
  opts.max_iterations = 5;
  XStreamEngine engine(store, opts);
  PageRankProgram pr;
  auto r = engine.run(pr, StartSet::all());
  auto want = ref::pagerank(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.values[v], want[v], 1e-3);
  }
}

TEST(ChiEngineTest, PageRankConvergesToFixedPoint) {
  // The PSW engine is asynchronous, so compare at (near) convergence.
  EdgeList g = gen::rmat(7, 6.0, 13);
  ScratchDir dir("cpr");
  auto store = ChiStore::build(g, dir.path(), 4);
  ChiEngine::Options opts;
  opts.max_iterations = 200;
  ChiEngine engine(store, opts);
  PageRankProgram pr;
  pr.tolerance = 1e-5f;
  auto r = engine.run(pr, StartSet::all());
  auto want = ref::pagerank(g, 300);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.values[v], want[v], 5e-3);
  }
}

// --- FlashGraph-like semi-external engine -------------------------------------------

TEST(FlashEngineTest, BfsMatchesReference) {
  EdgeList g = gen::rmat(9, 6.0, 42);
  ScratchDir dir("fbfs");
  auto store = baselines::FlashStore::build(g, dir.path());
  baselines::FlashEngine engine(store, baselines::FlashEngine::Options{});
  BfsProgram bfs{.source = 1};
  auto r = engine.run(bfs, StartSet::single(1));
  auto want = ref::bfs_levels(g, 1);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.values[v], want[v]) << "vertex " << v;
  }
}

TEST(FlashEngineTest, WccMatchesReference) {
  EdgeList g = gen::erdos_renyi(300, 600, 7).symmetrized();
  ScratchDir dir("fwcc");
  auto store = baselines::FlashStore::build(g, dir.path());
  baselines::FlashEngine engine(store, baselines::FlashEngine::Options{});
  WccProgram wcc;
  auto r = engine.run(wcc, StartSet::all());
  auto want = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.values[v], want[v]);
  }
}

TEST(FlashEngineTest, SsspMatchesReference) {
  EdgeList g = gen::with_random_weights(gen::rmat(8, 8.0, 5), 5);
  ScratchDir dir("fsssp");
  auto store = baselines::FlashStore::build(g, dir.path());
  ASSERT_TRUE(store.meta().weighted);
  baselines::FlashEngine engine(store, baselines::FlashEngine::Options{});
  SsspProgram sssp{.source = 3};
  auto r = engine.run(sssp, StartSet::single(3));
  auto want = ref::sssp_distances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!std::isinf(want[v])) {
      ASSERT_NEAR(r.values[v], want[v], 1e-4);
    }
  }
}

TEST(FlashEngineTest, PageRankMatchesJacobiReference) {
  EdgeList g = gen::rmat(8, 7.0, 11);
  ScratchDir dir("fpr");
  auto store = baselines::FlashStore::build(g, dir.path());
  baselines::FlashEngine::Options opts;
  opts.max_iterations = 5;
  baselines::FlashEngine engine(store, opts);
  PageRankProgram pr;
  auto r = engine.run(pr, StartSet::all());
  auto want = ref::pagerank(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(r.values[v], want[v], 1e-3);
  }
}

TEST(FlashEngineTest, SparseIterationsReadSelectively) {
  EdgeList g = gen::rmat(10, 8.0, 31);
  ScratchDir dir("fsel");
  auto store = baselines::FlashStore::build(g, dir.path());
  baselines::FlashEngine engine(store, baselines::FlashEngine::Options{});
  BfsProgram bfs{.source = 5};
  auto r = engine.run(bfs, StartSet::single(5));
  // Total adjacency traffic must be far below iterations * full-file size
  // (semi-external selective access), and there is no vertex-value write
  // traffic at all.
  std::uint64_t full = g.num_edges() * sizeof(VertexId);
  EXPECT_LT(r.stats.total_io.total_read_bytes(),
            full * r.stats.iterations_run() / 2);
  EXPECT_EQ(r.stats.total_io.write_bytes, 0u);
}

TEST(FlashEngineTest, RequestMergingReducesOps) {
  EdgeList g = gen::rmat(10, 8.0, 37);
  ScratchDir dir("fmerge");
  auto store = baselines::FlashStore::build(g, dir.path());
  BfsProgram bfs{.source = 2};
  baselines::FlashEngine::Options merged;
  merged.merge_gap_records = 64;
  baselines::FlashEngine::Options unmerged;
  unmerged.merge_gap_records = 0;
  auto a = baselines::FlashEngine(store, merged).run(bfs, StartSet::single(2));
  auto b =
      baselines::FlashEngine(store, unmerged).run(bfs, StartSet::single(2));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(a.values[v], b.values[v]);
  }
  EXPECT_LT(a.stats.total_io.rand_read_ops, b.stats.total_io.rand_read_ops);
}

// --- I/O architecture behaviours ---------------------------------------------------

TEST(BaselineIo, GraphChiWritesIntermediateData) {
  EdgeList g = gen::rmat(9, 8.0, 17);
  ScratchDir dir("iow");
  auto store = ChiStore::build(g, dir.path(), 4);
  ChiEngine engine(store, ChiEngine::Options{});
  WccProgram wcc;
  auto r = engine.run(wcc, StartSet::all());
  // Edge-value rewrite: every iteration writes ~|E| values.
  EXPECT_GT(r.stats.total_io.write_bytes,
            g.num_edges() * sizeof(VertexId) * r.stats.iterations_run() / 2);
}

TEST(BaselineIo, GridGraphReadsLessThanGraphChi) {
  EdgeList g = gen::rmat(10, 8.0, 19);
  ScratchDir dir1("cmp1"), dir2("cmp2");
  auto grid = GridStore::build(g, dir1.path(), 4);
  auto chi = ChiStore::build(g, dir2.path(), 4);
  PageRankProgram pr;
  GridEngine::Options go;
  go.max_iterations = 3;
  ChiEngine::Options co;
  co.max_iterations = 3;
  auto rg = GridEngine(grid, go).run(pr, StartSet::all());
  auto rc = ChiEngine(chi, co).run(pr, StartSet::all());
  EXPECT_LT(rg.stats.total_io.total_bytes(), rc.stats.total_io.total_bytes());
}

TEST(BaselineIo, SelectiveSchedulingReducesGridIo) {
  // A chain keeps exactly one vertex active, so with selective scheduling
  // GridGraph skips most rows of blocks each iteration.
  EdgeList g = gen::chain(4096);
  ScratchDir dir1("sel1"), dir2("sel2");
  auto s1 = GridStore::build(g, dir1.path(), 8);
  auto s2 = GridStore::build(g, dir2.path(), 8);
  BfsProgram bfs{.source = 0};
  GridEngine::Options sel;
  sel.selective_scheduling = true;
  GridEngine::Options nosel;
  nosel.selective_scheduling = false;
  auto r1 = GridEngine(s1, sel).run(bfs, StartSet::single(0));
  auto r2 = GridEngine(s2, nosel).run(bfs, StartSet::single(0));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r1.values[v], r2.values[v]);
  }
  EXPECT_LT(r1.stats.total_io.total_read_bytes(),
            r2.stats.total_io.total_read_bytes() / 2);
}

TEST(BaselineIo, XStreamUpdateTrafficScalesWithActiveEdges) {
  EdgeList g = gen::rmat(9, 8.0, 23);
  ScratchDir dir("xsio");
  auto store = XStreamStore::build(g, dir.path(), 4);
  XStreamEngine engine(store, XStreamEngine::Options{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, StartSet::single(0));
  // Scatter writes and gather reads the update files; sparse iterations must
  // write far less than |E| updates, but edge streaming still reads
  // everything every iteration.
  ASSERT_GE(r.stats.iterations.size(), 2u);
  const auto& first = r.stats.iterations.front();
  EXPECT_EQ(first.edges_processed, g.num_edges());
  EXPECT_LT(first.io.write_bytes, g.num_edges() * 4);  // few updates
  EXPECT_GT(first.io.seq_read_bytes,
            g.num_edges() * sizeof(baselines::XsRecord));
}

TEST(BaselineIo, StoresRejectCorruption) {
  EdgeList g = gen::chain(32);
  {
    ScratchDir dir("bcorr1");
    GridStore::build(g, dir.path(), 2);
    std::filesystem::resize_file(
        dir / "grid.dat", std::filesystem::file_size(dir / "grid.dat") - 4);
    EXPECT_THROW(GridStore::open(dir.path()), DataError);
  }
  {
    ScratchDir dir("bcorr2");
    ChiStore::build(g, dir.path(), 2);
    std::filesystem::resize_file(
        dir / "shards.dat",
        std::filesystem::file_size(dir / "shards.dat") - 4);
    EXPECT_THROW(ChiStore::open(dir.path()), DataError);
  }
  {
    ScratchDir dir("bcorr3");
    XStreamStore::build(g, dir.path(), 2);
    std::filesystem::resize_file(
        dir / "xs_edges.dat",
        std::filesystem::file_size(dir / "xs_edges.dat") - 4);
    EXPECT_THROW(XStreamStore::open(dir.path()), DataError);
  }
  {
    ScratchDir dir("bcorr4");
    baselines::FlashStore::build(g, dir.path());
    std::filesystem::resize_file(
        dir / "flash.adj", std::filesystem::file_size(dir / "flash.adj") - 4);
    EXPECT_THROW(baselines::FlashStore::open(dir.path()), DataError);
  }
}

TEST(BaselineIo, ChiWindowsCoverShards) {
  EdgeList g = gen::rmat(8, 8.0, 29);
  ScratchDir dir("cwin");
  auto store = ChiStore::build(g, dir.path(), 4);
  const auto& meta = store.meta();
  std::uint64_t total = 0;
  for (std::uint32_t j = 0; j < meta.p; ++j) {
    EXPECT_EQ(meta.window_begin(j, 0), 0u);
    EXPECT_EQ(meta.window_begin(j, meta.p), meta.shards[j].edge_count);
    for (std::uint32_t i = 0; i < meta.p; ++i) {
      EXPECT_LE(meta.window_begin(j, i), meta.window_begin(j, i + 1));
      total += meta.window_begin(j, i + 1) - meta.window_begin(j, i);
    }
  }
  EXPECT_EQ(total, g.num_edges());
}

}  // namespace
}  // namespace husg
