// Tests for the block-access heatmap profiler (src/obs/heatmap.{hpp,cpp}):
// counter mechanics and gating, exact per-block read counts against the
// engine on the paper's Figure 4 graph with P=2 (the heatmap must agree
// block-for-block with what the engine actually read), cache hit/miss and
// eviction attribution, and the JSON/CSV exports.
#include <gtest/gtest.h>

#include <sstream>

#include "husg/husg.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using obs::HeatCell;
using obs::HeatDir;
using obs::Heatmap;
using obs::HotBlock;
using testing::ScratchDir;

/// The heatmap is process-wide; every test arms its own session and clears
/// on exit so counters never leak across tests.
class HeatmapTest : public ::testing::Test {
 protected:
  void SetUp() override { Heatmap::instance().clear(); }
  void TearDown() override { Heatmap::instance().clear(); }
};

TEST_F(HeatmapTest, DisabledRecordsNothing) {
  Heatmap& heat = Heatmap::instance();
  EXPECT_FALSE(obs::heatmap_enabled());
  heat.record_read(HeatDir::kOut, 0, 0, 100);  // dropped: not armed
  EXPECT_FALSE(heat.has_data());

  heat.start(2);
  EXPECT_TRUE(obs::heatmap_enabled());
  heat.record_read(HeatDir::kOut, 0, 0, 100);
  heat.stop();
  EXPECT_FALSE(obs::heatmap_enabled());
  heat.record_read(HeatDir::kOut, 0, 0, 100);  // dropped: stopped

  HeatCell c = heat.cell(HeatDir::kOut, 0, 0);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.bytes, 100u);
}

TEST_F(HeatmapTest, CountersLandInTheRightCell) {
  Heatmap& heat = Heatmap::instance();
  heat.start(3);
  heat.record_read(HeatDir::kOut, 1, 2, 64);
  heat.record_read(HeatDir::kOut, 1, 2, 36);
  heat.record_hit(HeatDir::kIn, 2, 0);
  heat.record_miss(HeatDir::kIn, 2, 0);
  heat.record_eviction(HeatDir::kIn, 2, 0);

  HeatCell out = heat.cell(HeatDir::kOut, 1, 2);
  EXPECT_EQ(out.reads, 2u);
  EXPECT_EQ(out.bytes, 100u);
  EXPECT_EQ(out.hits, 0u);

  HeatCell in = heat.cell(HeatDir::kIn, 2, 0);
  EXPECT_EQ(in.hits, 1u);
  EXPECT_EQ(in.misses, 1u);
  EXPECT_EQ(in.evictions, 1u);
  EXPECT_EQ(in.accesses(), 1u);  // reads + hits

  // Same (row, col) in the other direction stayed untouched.
  EXPECT_TRUE(heat.cell(HeatDir::kOut, 2, 0).empty());
  // Out-of-range coordinates are dropped, not UB.
  heat.record_read(HeatDir::kOut, 3, 0, 1);
  heat.record_read(HeatDir::kOut, 0, 7, 1);
  EXPECT_TRUE(heat.cell(HeatDir::kOut, 0, 0).empty());
}

TEST_F(HeatmapTest, HottestRankingAndSkew) {
  Heatmap& heat = Heatmap::instance();
  heat.start(2);
  // (out,0,0): 5 accesses; (in,1,1): 3; (out,1,0): 1.
  for (int k = 0; k < 5; ++k) heat.record_read(HeatDir::kOut, 0, 0, 10);
  for (int k = 0; k < 3; ++k) heat.record_hit(HeatDir::kIn, 1, 1);
  heat.record_read(HeatDir::kOut, 1, 0, 10);

  std::vector<HotBlock> top = heat.hottest(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].dir, HeatDir::kOut);
  EXPECT_EQ(top[0].row, 0u);
  EXPECT_EQ(top[0].col, 0u);
  EXPECT_EQ(top[0].cell.accesses(), 5u);
  EXPECT_EQ(top[1].cell.accesses(), 3u);

  // Row totals: row0 = 5, row1 = 4 -> max/mean = 5/4.5.
  EXPECT_NEAR(heat.row_skew(), 5.0 / 4.5, 1e-9);
  // Col totals: col0 = 6, col1 = 3 -> 6/4.5.
  EXPECT_NEAR(heat.col_skew(), 6.0 / 4.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Engine integration: exact block counts on the Figure 4 graph with P=2.

EngineOptions engine_options() {
  EngineOptions o;
  o.threads = 2;
  o.file_backed_values = false;  // isolate edge-block I/O
  return o;
}

TEST_F(HeatmapTest, CopStreamsEveryInBlockOncePerIteration) {
  ScratchDir scratch("heat_cop");
  DualBlockStore store = DualBlockStore::build(testing::figure4_graph(),
                                               scratch / "store",
                                               StoreOptions{2});
  ASSERT_EQ(store.meta().p(), 2u);
  Heatmap::instance().start(store.meta().p());

  constexpr int kIters = 3;
  EngineOptions o = engine_options();
  o.mode = UpdateMode::kCop;  // force column pulls, no cache
  o.max_iterations = kIters;
  Engine e(store, o);
  PageRankProgram p;
  e.run(p, Frontier::all(store.meta(), store.out_degrees()));

  const Heatmap& heat = Heatmap::instance();
  // All four Figure 4 in-blocks are nonempty; with the full frontier, COP
  // streams each exactly once per iteration, and the recorded bytes are the
  // block's on-disk adjacency payload. Index I/O must not appear.
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 2; ++j) {
      HeatCell c = heat.cell(HeatDir::kIn, i, j);
      ASSERT_GT(store.meta().in_block(i, j).edge_count, 0u);
      EXPECT_EQ(c.reads, static_cast<std::uint64_t>(kIters))
          << "in-block (" << i << "," << j << ")";
      EXPECT_EQ(c.bytes, static_cast<std::uint64_t>(kIters) *
                             store.meta().in_block(i, j).adj_bytes)
          << "in-block (" << i << "," << j << ")";
      EXPECT_EQ(c.hits, 0u);    // no cache in play
      EXPECT_EQ(c.misses, 0u);  // consult() never ran
      EXPECT_TRUE(heat.cell(HeatDir::kOut, i, j).empty())
          << "COP run must not touch out-blocks";
    }
  }
}

TEST_F(HeatmapTest, RopWithCacheFillReadsEachBlockOnce) {
  ScratchDir scratch("heat_rop");
  DualBlockStore store = DualBlockStore::build(testing::figure4_graph(),
                                               scratch / "store",
                                               StoreOptions{2});
  Heatmap::instance().start(store.meta().p());

  EngineOptions o = engine_options();
  o.threads = 1;  // two workers racing one cold block would both read it
  o.mode = UpdateMode::kRop;
  o.max_iterations = 3;
  o.cache_budget_bytes = 1 << 20;  // everything fits; fill_rop default on
  Engine e(store, o);
  PageRankProgram p;
  e.run(p, Frontier::all(store.meta(), store.out_degrees()));

  const Heatmap& heat = Heatmap::instance();
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 2; ++j) {
      if (store.meta().out_block(i, j).edge_count == 0) continue;
      HeatCell c = heat.cell(HeatDir::kOut, i, j);
      // First point load misses and fills the whole block; every later
      // vertex in every iteration is a cache hit — exactly one disk read.
      EXPECT_EQ(c.reads, 1u) << "out-block (" << i << "," << j << ")";
      EXPECT_EQ(c.misses, 1u) << "out-block (" << i << "," << j << ")";
      EXPECT_EQ(c.bytes, store.meta().out_block(i, j).adj_bytes);
      EXPECT_GT(c.hits, 0u);
      EXPECT_TRUE(heat.cell(HeatDir::kIn, i, j).empty());
    }
  }
}

TEST_F(HeatmapTest, EvictionFeedRecordsAdjacencyKindsOnly) {
  Heatmap& heat = Heatmap::instance();
  heat.start(4);
  // 1000-byte budget: inserting three 400-byte unpinned adjacency blocks
  // forces an eviction of the first.
  BlockCache cache({/*budget_bytes=*/1000, /*max_block_fraction=*/0.5});
  cache.insert(BlockKey{BlockKind::kOutAdj, 0, 1},
               std::vector<char>(400, 'a'), 400);
  cache.insert(BlockKey{BlockKind::kInAdj, 2, 3},
               std::vector<char>(400, 'b'), 400);
  cache.insert(BlockKey{BlockKind::kOutAdj, 1, 1},
               std::vector<char>(400, 'c'), 400);
  // CLOCK with all second-chance bits set sweeps once, clears them, then
  // evicts the first entry inserted.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(heat.cell(HeatDir::kOut, 0, 1).evictions, 1u);
  EXPECT_EQ(heat.cell(HeatDir::kIn, 2, 3).evictions, 0u);

  // Index-kind evictions never reach the heatmap.
  Heatmap::instance().clear();
  heat.start(4);
  BlockCache idx_cache({1000, 0.5});
  idx_cache.insert(BlockKey{BlockKind::kOutIdx, 0, 0},
                   std::vector<char>(400, 'x'), 400);
  idx_cache.insert(BlockKey{BlockKind::kInIdx, 0, 1},
                   std::vector<char>(400, 'y'), 400);
  idx_cache.insert(BlockKey{BlockKind::kOutIdx, 0, 2},
                   std::vector<char>(400, 'z'), 400);
  EXPECT_EQ(idx_cache.stats().evictions, 1u);
  EXPECT_FALSE(heat.has_data());
}

TEST_F(HeatmapTest, JsonAndCsvExports) {
  Heatmap& heat = Heatmap::instance();
  heat.start(2);
  heat.record_read(HeatDir::kOut, 0, 1, 128);
  heat.record_hit(HeatDir::kIn, 1, 0);

  std::ostringstream json;
  heat.write_json(json, /*top_k=*/4);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"p\": 2"), std::string::npos);
  EXPECT_NE(j.find("\"dir\": \"out\", \"row\": 0, \"col\": 1"),
            std::string::npos);
  EXPECT_NE(j.find("\"bytes\": 128"), std::string::npos);
  EXPECT_NE(j.find("\"payload_bytes\": 128"), std::string::npos);
  EXPECT_NE(j.find("\"row_skew\""), std::string::npos);
  EXPECT_NE(j.find("\"hottest\""), std::string::npos);

  std::ostringstream csv;
  heat.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("dir,row,col,reads,bytes,payload_bytes,hits,misses,"
                   "evictions"),
            std::string::npos);
  // 4-arg record_read: payload defaults to the disk bytes.
  EXPECT_NE(c.find("out,0,1,1,128,128,0,0,0"), std::string::npos);
  EXPECT_NE(c.find("in,1,0,0,0,0,1,0,0"), std::string::npos);
}

TEST_F(HeatmapTest, PublishSetsSummaryGauges) {
  Heatmap& heat = Heatmap::instance();
  heat.start(2);
  for (int k = 0; k < 4; ++k) heat.record_read(HeatDir::kOut, 1, 0, 32);
  heat.record_read(HeatDir::kIn, 0, 0, 16);

  obs::Registry reg;
  heat.publish(reg);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("husg_heatmap_blocks_touched 2"), std::string::npos);
  EXPECT_NE(text.find("husg_heatmap_hottest_accesses 4"), std::string::npos);
  EXPECT_NE(text.find("husg_heatmap_hottest_row 1"), std::string::npos);
  EXPECT_NE(text.find("husg_heatmap_row_skew"), std::string::npos);
}

}  // namespace
}  // namespace husg
