// Engine correctness: ROP, COP and Hybrid must all reach the reference fixed
// points, across sync modes, decision granularities, partition counts and
// thread counts.
#include <gtest/gtest.h>

#include "husg/husg.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

struct EngineCase {
  UpdateMode mode;
  SyncMode sync;
  DecisionGranularity granularity;
  std::uint32_t p;
  std::size_t threads;
  bool file_backed;
};

std::string case_name(const ::testing::TestParamInfo<EngineCase>& info) {
  const EngineCase& c = info.param;
  std::string s = to_string(c.mode);
  s += c.sync == SyncMode::kJacobi ? "_jacobi" : "_async";
  s += c.granularity == DecisionGranularity::kGlobal ? "_global" : "_perint";
  s += "_p" + std::to_string(c.p) + "_t" + std::to_string(c.threads);
  s += c.file_backed ? "_file" : "_mem";
  return s;
}

std::vector<EngineCase> all_cases() {
  std::vector<EngineCase> cases;
  for (UpdateMode mode :
       {UpdateMode::kRop, UpdateMode::kCop, UpdateMode::kHybrid}) {
    for (SyncMode sync : {SyncMode::kJacobi, SyncMode::kPaperAsync}) {
      for (DecisionGranularity g : {DecisionGranularity::kGlobal,
                                    DecisionGranularity::kPerInterval}) {
        if (g == DecisionGranularity::kPerInterval &&
            mode != UpdateMode::kHybrid) {
          continue;  // granularity only matters for hybrid decisions
        }
        cases.push_back(EngineCase{mode, sync, g, 4, 3, true});
      }
    }
  }
  // Partition/thread sweeps on the default mode.
  for (std::uint32_t p : {1u, 2u, 7u, 16u}) {
    cases.push_back(
        EngineCase{UpdateMode::kHybrid, SyncMode::kJacobi,
                   DecisionGranularity::kGlobal, p, 2, true});
  }
  for (std::size_t t : {1u, 2u, 8u}) {
    cases.push_back(EngineCase{UpdateMode::kHybrid, SyncMode::kJacobi,
                               DecisionGranularity::kGlobal, 4, t, false});
  }
  return cases;
}

EngineOptions make_options(const EngineCase& c) {
  EngineOptions o;
  o.mode = c.mode;
  o.sync = c.sync;
  o.granularity = c.granularity;
  o.threads = c.threads;
  o.file_backed_values = c.file_backed;
  o.device = DeviceProfile::hdd7200();
  return o;
}

class EngineSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineSweep, BfsMatchesReference) {
  const EngineCase& c = GetParam();
  EdgeList g = gen::rmat(9, 6.0, /*seed=*/42);
  ScratchDir dir("bfs");
  auto store = DualBlockStore::build(g, dir.path(),
                                     StoreOptions{c.p, PartitionScheme::kEqualVertices});
  Engine engine(store, make_options(c));
  BfsProgram bfs{.source = 1};
  auto result =
      engine.run(bfs, Frontier::single(store.meta(), 1, store.out_degrees()));
  auto expect = ref::bfs_levels(g, 1);
  ASSERT_EQ(result.values.size(), expect.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.values[v], expect[v]) << "vertex " << v;
  }
}

TEST_P(EngineSweep, WccMatchesReference) {
  const EngineCase& c = GetParam();
  EdgeList g = gen::erdos_renyi(300, 500, /*seed=*/7).symmetrized();
  ScratchDir dir("wcc");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{c.p});
  Engine engine(store, make_options(c));
  WccProgram wcc;
  auto result =
      engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
  auto expect = ref::wcc_labels(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.values[v], expect[v]) << "vertex " << v;
  }
}

TEST_P(EngineSweep, SsspMatchesReference) {
  const EngineCase& c = GetParam();
  EdgeList g =
      gen::with_random_weights(gen::rmat(8, 8.0, /*seed=*/5), /*seed=*/5);
  ScratchDir dir("sssp");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{c.p});
  Engine engine(store, make_options(c));
  SsspProgram sssp{.source = 3};
  auto result =
      engine.run(sssp, Frontier::single(store.meta(), 3, store.out_degrees()));
  auto expect = ref::sssp_distances(g, 3);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::isinf(expect[v])) {
      EXPECT_TRUE(std::isinf(result.values[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(result.values[v], expect[v], 1e-4) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineSweep,
                         ::testing::ValuesIn(all_cases()), case_name);

// --- PageRank ---------------------------------------------------------------

TEST(EnginePageRank, MatchesJacobiReference) {
  EdgeList g = gen::rmat(8, 7.0, /*seed=*/11);
  ScratchDir dir("pr");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  opts.mode = UpdateMode::kCop;
  opts.sync = SyncMode::kJacobi;
  opts.max_iterations = 5;
  Engine engine(store, opts);
  PageRankProgram pr;
  auto result =
      engine.run(pr, Frontier::all(store.meta(), store.out_degrees()));
  auto expect = ref::pagerank(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 1e-3) << "vertex " << v;
  }
  EXPECT_EQ(result.stats.iterations_run(), 5);
}

TEST(EnginePageRank, RopScatterEqualsCopGather) {
  EdgeList g = gen::rmat(8, 6.0, /*seed=*/13);
  ScratchDir dir("pr2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  PageRankProgram pr;
  EngineOptions cop_opts;
  cop_opts.mode = UpdateMode::kCop;
  cop_opts.max_iterations = 4;
  EngineOptions rop_opts = cop_opts;
  rop_opts.mode = UpdateMode::kRop;
  Engine cop_engine(store, cop_opts);
  Engine rop_engine(store, rop_opts);
  auto all = Frontier::all(store.meta(), store.out_degrees());
  auto cop = cop_engine.run(pr, all);
  auto rop = rop_engine.run(pr, all);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(cop.values[v], rop.values[v], 1e-4) << "vertex " << v;
  }
}

TEST(EnginePageRank, GaussSeidelConvergesToSameFixedPoint) {
  EdgeList g = gen::rmat(7, 6.0, /*seed=*/17);
  ScratchDir dir("pr3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  PageRankProgram pr;
  pr.tolerance = 1e-4f;
  EngineOptions opts;
  opts.mode = UpdateMode::kCop;
  opts.sync = SyncMode::kPaperAsync;
  opts.max_iterations = 200;
  Engine engine(store, opts);
  auto result =
      engine.run(pr, Frontier::all(store.meta(), store.out_degrees()));
  auto expect = ref::pagerank(g, 300);  // effectively converged
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 5e-3) << "vertex " << v;
  }
  // Gauss-Seidel must converge well before the cap (Jacobi at this
  // tolerance needs ~60+ damped sweeps).
  EXPECT_LT(result.stats.iterations_run(), 200);
}

// --- PageRank-Delta ----------------------------------------------------------

TEST(EnginePageRankDelta, ConvergesToPageRankFixedPoint) {
  EdgeList g = gen::rmat(8, 6.0, /*seed=*/23);
  ScratchDir dir("prd");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  opts.mode = UpdateMode::kHybrid;
  opts.max_iterations = 2000;
  Engine engine(store, opts);
  PageRankDeltaProgram prd;
  prd.epsilon = 1e-5f;
  auto result =
      engine.run(prd, Frontier::all(store.meta(), store.out_degrees()));
  auto expect = ref::pagerank(g, 300);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(result.values[v].rank, expect[v], 2e-2) << "vertex " << v;
  }
  // The run must actually converge rather than hit the iteration cap.
  EXPECT_LT(result.stats.iterations_run(), 2000);
}

TEST(EnginePageRankDelta, FrontierShrinksOverTime) {
  EdgeList g = gen::rmat(9, 8.0, /*seed=*/29);
  ScratchDir dir("prd2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  opts.max_iterations = 500;
  Engine engine(store, opts);
  PageRankDeltaProgram prd;
  auto result =
      engine.run(prd, Frontier::all(store.meta(), store.out_degrees()));
  const auto& iters = result.stats.iterations;
  ASSERT_GE(iters.size(), 3u);
  EXPECT_LT(iters.back().active_vertices, iters.front().active_vertices);
}

// --- I/O behaviour -----------------------------------------------------------

TEST(EngineIo, RopReadsLessThanCopOnSparseFrontier) {
  EdgeList g = gen::rmat(10, 8.0, /*seed=*/31);
  ScratchDir dir("io");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  BfsProgram bfs{.source = 0};
  auto run_mode = [&](UpdateMode m) {
    EngineOptions o;
    o.mode = m;
    Engine e(store, o);
    auto r = e.run(bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
    return r.stats.total_io.total_read_bytes();
  };
  std::uint64_t rop = run_mode(UpdateMode::kRop);
  std::uint64_t cop = run_mode(UpdateMode::kCop);
  EXPECT_LT(rop, cop);
}

TEST(EngineIo, HybridDecisionsAreRecorded) {
  EdgeList g = gen::rmat(11, 8.0, /*seed=*/37);
  ScratchDir dir("io2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  // Scale the seek latency to this toy graph's size so the ROP/COP
  // crossover exists (see DeviceProfile::with_seek_scale).
  opts.device = DeviceProfile::hdd7200().with_seek_scale(1e-3);
  Engine engine(store, opts);
  // Start from a low-degree source so the first frontier is genuinely
  // sparse (vertex 0 is the R-MAT hub).
  VertexId source = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (store.out_degrees()[v] >= 1 && store.out_degrees()[v] <= 3) {
      source = v;
      break;
    }
  }
  BfsProgram bfs{.source = source};
  auto r = engine.run(
      bfs, Frontier::single(store.meta(), source, store.out_degrees()));
  ASSERT_FALSE(r.stats.iterations.empty());
  for (const auto& it : r.stats.iterations) {
    ASSERT_EQ(it.decisions.size(), store.meta().p());
    // Global granularity: all intervals share one decision.
    for (const auto& d : it.decisions) {
      EXPECT_EQ(d.used_rop, it.decisions.front().used_rop);
    }
  }
  // A BFS from one source must start sparse (ROP) and, on this skewed graph,
  // hit at least one dense iteration (COP).
  EXPECT_TRUE(r.stats.iterations.front().any_rop());
  bool any_cop = false;
  for (const auto& it : r.stats.iterations) any_cop |= it.any_cop();
  EXPECT_TRUE(any_cop);
}

TEST(EngineIo, ModeledTimePositiveOnRealDevice) {
  EdgeList g = gen::rmat(8, 6.0, /*seed=*/41);
  ScratchDir dir("io3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  opts.device = DeviceProfile::hdd7200();
  Engine engine(store, opts);
  WccProgram wcc;
  auto r = engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
  EXPECT_GT(r.stats.modeled_seconds(), 0.0);
  EXPECT_GT(r.stats.total_io.total_read_bytes(), 0u);
  EXPECT_GT(r.stats.edges_processed, 0u);
}

// --- Edge cases ---------------------------------------------------------------

TEST(EngineEdgeCases, EmptyFrontierTerminatesImmediately) {
  EdgeList g = gen::chain(16);
  ScratchDir dir("edge1");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  Engine engine(store, EngineOptions{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, Frontier::none(store.meta()));
  EXPECT_EQ(r.stats.iterations_run(), 0);
  EXPECT_EQ(r.values[0], 0u);  // initial values preserved
  EXPECT_EQ(r.values[5], BfsProgram::kUnreached);
}

TEST(EngineEdgeCases, SingleVertexGraph) {
  EdgeList g(1, {});
  ScratchDir dir("edge2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  Engine engine(store, EngineOptions{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  EXPECT_EQ(r.values[0], 0u);
}

TEST(EngineEdgeCases, SelfLoopsAndDuplicateEdges) {
  std::vector<Edge> edges = {{0, 0}, {0, 1}, {0, 1}, {1, 2}, {2, 2}, {2, 0}};
  EdgeList g(3, std::move(edges));
  ScratchDir dir("edge3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  Engine engine(store, EngineOptions{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  EXPECT_EQ(r.values[0], 0u);
  EXPECT_EQ(r.values[1], 1u);
  EXPECT_EQ(r.values[2], 2u);
}

TEST(EngineEdgeCases, ChainNeedsManyIterations) {
  EdgeList g = gen::chain(64);
  ScratchDir dir("edge4");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  Engine engine(store, EngineOptions{});
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  EXPECT_EQ(r.values[63], 63u);
  EXPECT_EQ(r.stats.iterations_run(), 63);
}

TEST(EngineEdgeCases, MaxIterationsCapRespected) {
  EdgeList g = gen::chain(64);
  ScratchDir dir("edge5");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  EngineOptions opts;
  opts.max_iterations = 5;
  Engine engine(store, opts);
  BfsProgram bfs{.source = 0};
  auto r = engine.run(bfs, Frontier::single(store.meta(), 0, store.out_degrees()));
  EXPECT_EQ(r.stats.iterations_run(), 5);
  EXPECT_EQ(r.values[5], 5u);
  EXPECT_EQ(r.values[6], BfsProgram::kUnreached);
}

TEST(EngineEdgeCases, DegreeBalancedPartitioningGivesSameResults) {
  // Uneven interval boundaries exercise every local-index computation.
  EdgeList g = gen::rmat(9, 8.0, 43);
  ScratchDir dir("edgedeg");
  auto store = DualBlockStore::build(
      g, dir.path(), StoreOptions{5, PartitionScheme::kEqualDegree});
  // Hub-heavy R-MAT: the first interval must be much smaller than |V|/5.
  ASSERT_LT(store.meta().interval_size(0), g.num_vertices() / 5);
  for (UpdateMode mode :
       {UpdateMode::kRop, UpdateMode::kCop, UpdateMode::kHybrid}) {
    EngineOptions o;
    o.mode = mode;
    o.threads = 3;
    Engine engine(store, o);
    BfsProgram bfs{.source = 2};
    auto r = engine.run(
        bfs, Frontier::single(store.meta(), 2, store.out_degrees()));
    auto want = ref::bfs_levels(g, 2);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.values[v], want[v]) << to_string(mode) << " vertex " << v;
    }
  }
}

TEST(EngineStress, RepeatedParallelRunsAreDeterministic) {
  // Race smoke test: many threads, repeated runs, identical results.
  EdgeList g = gen::rmat(10, 10.0, 47);
  ScratchDir dir("stress");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{8});
  EngineOptions o;
  o.threads = 8;
  o.file_backed_values = false;
  Engine engine(store, o);
  WccProgram wcc;
  auto first =
      engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
  for (int round = 0; round < 3; ++round) {
    auto again =
        engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
    ASSERT_EQ(again.values, first.values) << "round " << round;
    ASSERT_EQ(again.stats.iterations_run(), first.stats.iterations_run());
  }
}

TEST(EngineIo, OverlapIoChangesNothingButWallTime) {
  EdgeList g = gen::rmat(9, 8.0, 53);
  ScratchDir dir("ovl");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{6});
  WccProgram wcc;
  RunResult<WccProgram::Value> results[2];
  IoSnapshot io[2];
  for (int on = 0; on < 2; ++on) {
    EngineOptions o;
    o.mode = UpdateMode::kCop;
    o.overlap_io = on == 1;
    Engine engine(store, o);
    IoSnapshot before = store.io().snapshot();
    results[on] =
        engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
    io[on] = store.io().snapshot() - before;
  }
  EXPECT_EQ(results[0].values, results[1].values);
  EXPECT_EQ(io[0].total_bytes(), io[1].total_bytes());
  EXPECT_EQ(io[0].seq_read_ops, io[1].seq_read_ops);
}

TEST(EngineEdgeCases, PerIntervalRequiresIdempotent) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("edge6");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  EngineOptions opts;
  opts.granularity = DecisionGranularity::kPerInterval;
  Engine engine(store, opts);
  PageRankDeltaProgram prd;  // additive, not idempotent
  EXPECT_THROW(
      engine.run(prd, Frontier::all(store.meta(), store.out_degrees())),
      DataError);
}

}  // namespace
}  // namespace husg
