// Shared helpers for the test suite: scratch directories and small graphs.
#pragma once

#include <filesystem>
#include <string>

#include "graph/edge_list.hpp"
#include "io/file.hpp"

namespace husg::testing {

/// RAII scratch directory under the system temp dir, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    dir_ = std::filesystem::temp_directory_path() /
           ("husg_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    ensure_directory(dir_);
  }
  ~ScratchDir() { remove_tree(dir_); }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::filesystem::path& path() const { return dir_; }
  std::filesystem::path operator/(const std::string& sub) const {
    return dir_ / sub;
  }

 private:
  std::filesystem::path dir_;
};

/// The paper's Figure 4 example graph: 10 vertices (here 0-indexed 0..9).
/// Edges transcribed from the in-block illustration.
inline EdgeList figure4_graph() {
  // Paper vertices 1..10 -> 0..9.
  std::vector<Edge> edges;
  auto add = [&](int u, int v) {
    edges.push_back(Edge{static_cast<VertexId>(u - 1),
                         static_cast<VertexId>(v - 1)});
  };
  // in-block (1,1): 2,4->1; 4->2; 2,4->3; 1->4
  add(2, 1); add(4, 1); add(4, 2); add(2, 3); add(4, 3); add(1, 4);
  // in-block (2,1): 6->1; 6,9->2; 6,9,10->3; 6,7,10->5
  add(6, 1); add(6, 2); add(9, 2); add(6, 3); add(9, 3); add(10, 3);
  add(6, 5); add(7, 5); add(10, 5);
  // in-block (1,2): 1,2->6; 1,5->7; 1,2->9; 5->10
  add(1, 6); add(2, 6); add(1, 7); add(5, 7); add(1, 9); add(2, 9);
  add(5, 10);
  // in-block (2,2): 7,9->6; 9,10->7; 6,7,9->8
  add(7, 6); add(9, 6); add(9, 7); add(10, 7); add(6, 8); add(7, 8);
  add(9, 8);
  return EdgeList(10, std::move(edges));
}

}  // namespace husg::testing
