// Tests for the memory-budgeted block cache (src/cache/): the BlockCache
// contract (budget, CLOCK eviction, pinning, admission), the cached reader's
// engine integration (budget 0 == bit-identical I/O; warm cache == zero edge
// reads; results always match the uncached engine), and the cache-aware
// predictor flavor.
#include <gtest/gtest.h>

#include <thread>

#include "husg/husg.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

std::vector<char> payload_of(std::uint32_t row, std::uint32_t col,
                             std::size_t size) {
  return std::vector<char>(size, static_cast<char>((row * 31 + col) & 0xff));
}

TEST(BlockCacheTest, InsertFindAndStats) {
  BlockCache cache({/*budget_bytes=*/1024, /*max_block_fraction=*/1.0});
  BlockKey key{BlockKind::kOutAdj, 1, 2};
  EXPECT_EQ(cache.find(key), nullptr);
  auto handle = cache.insert(key, payload_of(1, 2, 100), 100);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(handle->size(), 100u);
  auto hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), handle.get());

  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.resident_bytes, 100u);
  EXPECT_EQ(s.resident_blocks, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(BlockCacheTest, AdmissionRejectsOversizedBlock) {
  // 25% of 1000 = 250 bytes max; a 300-byte payload is never admitted.
  BlockCache cache({1000, 0.25});
  EXPECT_EQ(cache.max_admissible_bytes(), 250u);
  BlockKey key{BlockKind::kInAdj, 0, 0};
  EXPECT_EQ(cache.insert(key, payload_of(0, 0, 300), 300), nullptr);
  EXPECT_FALSE(cache.contains(key));
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_EQ(cache.resident_bytes(), 0u);

  // A 250-byte payload fits exactly.
  ASSERT_NE(cache.insert(key, payload_of(0, 0, 250), 250), nullptr);
  EXPECT_TRUE(cache.contains(key));
}

TEST(BlockCacheTest, EvictionNeverReclaimsPinnedEntry) {
  BlockCache cache({1000, 0.5});
  BlockKey a{BlockKind::kOutAdj, 0, 0};
  BlockKey b{BlockKind::kOutAdj, 0, 1};
  BlockKey c{BlockKind::kOutAdj, 0, 2};
  auto pin_a = cache.insert(a, payload_of(0, 0, 400), 400);  // held -> pinned
  ASSERT_NE(pin_a, nullptr);
  cache.insert(b, payload_of(0, 1, 400), 400);  // handle dropped
  EXPECT_TRUE(cache.is_pinned(a));
  EXPECT_FALSE(cache.is_pinned(b));

  // Inserting c needs 200 free bytes: the sweep must skip pinned a and
  // evict b (after clearing its second-chance bit).
  ASSERT_NE(cache.insert(c, payload_of(0, 2, 400), 400), nullptr);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_FALSE(cache.contains(b));
  EXPECT_TRUE(cache.contains(c));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The pinned entry's bytes stayed valid throughout.
  EXPECT_EQ((*pin_a)[0], payload_of(0, 0, 1)[0]);
  pin_a.reset();
  EXPECT_FALSE(cache.is_pinned(a));
}

TEST(BlockCacheTest, InsertRejectedWhenEverythingPinned) {
  BlockCache cache({800, 1.0});
  auto pin_a =
      cache.insert(BlockKey{BlockKind::kInIdx, 0, 0}, payload_of(0, 0, 400),
                   400);
  auto pin_b =
      cache.insert(BlockKey{BlockKind::kInIdx, 0, 1}, payload_of(0, 1, 400),
                   400);
  ASSERT_NE(pin_a, nullptr);
  ASSERT_NE(pin_b, nullptr);
  // Nothing evictable: the insert is rejected, not blocked, and both pinned
  // payloads survive.
  EXPECT_EQ(cache.insert(BlockKey{BlockKind::kInIdx, 0, 2},
                         payload_of(0, 2, 400), 400),
            nullptr);
  EXPECT_EQ(cache.stats().admission_rejects, 1u);
  EXPECT_EQ(cache.resident_bytes(), 800u);
}

TEST(BlockCacheTest, DuplicateInsertKeepsResidentCopy) {
  BlockCache cache({1024, 1.0});
  BlockKey key{BlockKind::kOutIdx, 3, 4};
  auto first = cache.insert(key, payload_of(3, 4, 64), 64);
  auto second = cache.insert(key, payload_of(3, 4, 64), 64);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.resident_bytes(), 64u);
}

TEST(BlockCacheTest, ConcurrentFindAndInsert) {
  // Hammer a small cache from several threads; every returned payload must
  // carry its key's content pattern, and the budget must hold at the end.
  BlockCache cache({1 << 14, 0.25});
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  constexpr std::uint32_t kKeys = 64;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOps; ++op) {
        std::uint32_t row = static_cast<std::uint32_t>((op * 7 + t) % kKeys);
        std::uint32_t col = row % 8;
        BlockKey key{BlockKind::kOutAdj, row, col};
        std::size_t size = 64 + (row % 17) * 8;
        BlockCache::PinnedBytes bytes = cache.find(key);
        if (!bytes) bytes = cache.insert(key, payload_of(row, col, size), size);
        if (!bytes) continue;  // admission raced; fine
        if (bytes->size() != size ||
            (*bytes)[0] != static_cast<char>((row * 31 + col) & 0xff)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
  CacheStats s = cache.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.bytes_inserted - s.bytes_evicted, s.resident_bytes);
}

// ---------------------------------------------------------------------------
// Engine integration.

EdgeList test_graph() { return gen::rmat(10, 8.0, /*seed=*/7); }

EngineOptions base_options() {
  EngineOptions o;
  o.threads = 2;
  o.file_backed_values = false;  // isolate edge-block I/O
  return o;
}

void expect_same_io(const IoSnapshot& a, const IoSnapshot& b,
                    const char* what) {
  EXPECT_EQ(a.seq_read_bytes, b.seq_read_bytes) << what;
  EXPECT_EQ(a.seq_read_ops, b.seq_read_ops) << what;
  EXPECT_EQ(a.rand_read_bytes, b.rand_read_bytes) << what;
  EXPECT_EQ(a.rand_read_ops, b.rand_read_ops) << what;
  EXPECT_EQ(a.write_bytes, b.write_bytes) << what;
  EXPECT_EQ(a.write_ops, b.write_ops) << what;
}

TEST(CachedEngineTest, BudgetZeroIoBitIdenticalToUncached) {
  ScratchDir scratch("cache_budget0");
  DualBlockStore store =
      DualBlockStore::build(test_graph(), scratch / "store", StoreOptions{4});

  auto run_bfs = [&](EngineOptions o) {
    Engine e(store, o);
    BfsProgram p{.source = 0};
    return e.run(p, Frontier::single(store.meta(), 0, store.out_degrees()));
  };
  auto run_pr = [&](EngineOptions o) {
    o.max_iterations = 3;
    Engine e(store, o);
    PageRankProgram p;
    return e.run(p, Frontier::all(store.meta(), store.out_degrees()));
  };

  EngineOptions plain = base_options();
  EngineOptions zero = base_options();
  zero.cache_budget_bytes = 0;
  zero.cache_fill_rop = true;

  auto bfs_a = run_bfs(plain), bfs_b = run_bfs(zero);
  ASSERT_EQ(bfs_a.stats.iterations_run(), bfs_b.stats.iterations_run());
  for (int i = 0; i < bfs_a.stats.iterations_run(); ++i) {
    expect_same_io(bfs_a.stats.iterations[i].io, bfs_b.stats.iterations[i].io,
                   "bfs iteration");
  }
  EXPECT_EQ(bfs_a.values, bfs_b.values);
  EXPECT_EQ(bfs_b.stats.cache.lookups(), 0u);

  auto pr_a = run_pr(plain), pr_b = run_pr(zero);
  ASSERT_EQ(pr_a.stats.iterations_run(), pr_b.stats.iterations_run());
  for (int i = 0; i < pr_a.stats.iterations_run(); ++i) {
    expect_same_io(pr_a.stats.iterations[i].io, pr_b.stats.iterations[i].io,
                   "pagerank iteration");
  }
  EXPECT_EQ(pr_a.values, pr_b.values);
}

TEST(CachedEngineTest, FullBudgetPageRankReadsNothingAfterWarmup) {
  ScratchDir scratch("cache_full");
  DualBlockStore store =
      DualBlockStore::build(test_graph(), scratch / "store", StoreOptions{4});

  EngineOptions o = base_options();
  o.cache_budget_bytes = 256ull << 20;  // far larger than the whole store
  o.max_iterations = 4;
  Engine e(store, o);
  PageRankProgram p;
  auto r = e.run(p, Frontier::all(store.meta(), store.out_degrees()));

  ASSERT_GE(r.stats.iterations_run(), 2);
  EXPECT_GT(r.stats.iterations[0].io.total_read_bytes(), 0u);
  for (int i = 1; i < r.stats.iterations_run(); ++i) {
    EXPECT_EQ(r.stats.iterations[i].io.total_read_bytes(), 0u)
        << "iteration " << i << " should be served fully from the cache";
    EXPECT_GT(r.stats.iterations[i].cache.hits, 0u);
  }
  EXPECT_GT(r.stats.cache.bytes_saved, 0u);
}

TEST(CachedEngineTest, ResultsMatchUncachedAcrossBudgets) {
  ScratchDir scratch("cache_budgets");
  EdgeList g = test_graph();
  DualBlockStore store =
      DualBlockStore::build(g, scratch / "store", StoreOptions{4});

  auto run_pr = [&](std::uint64_t budget) {
    EngineOptions o = base_options();
    o.cache_budget_bytes = budget;
    o.max_iterations = 4;
    Engine e(store, o);
    PageRankProgram p;
    return e.run(p, Frontier::all(store.meta(), store.out_degrees()));
  };
  auto run_bfs = [&](std::uint64_t budget) {
    EngineOptions o = base_options();
    o.cache_budget_bytes = budget;
    Engine e(store, o);
    BfsProgram p{.source = 0};
    return e.run(p, Frontier::single(store.meta(), 0, store.out_degrees()));
  };

  auto pr_ref = run_pr(0);
  auto bfs_ref = run_bfs(0);
  // 16 KiB forces constant churn; 256 MiB holds everything.
  for (std::uint64_t budget : {std::uint64_t{16} << 10, std::uint64_t{256}
                                                            << 20}) {
    auto pr = run_pr(budget);
    EXPECT_EQ(pr.values, pr_ref.values) << "budget " << budget;
    auto bfs = run_bfs(budget);
    EXPECT_EQ(bfs.values, bfs_ref.values) << "budget " << budget;
    EXPECT_GT(pr.stats.cache.lookups(), 0u);
  }
  // The tiny budget must have cycled entries.
  auto churn = run_pr(std::uint64_t{16} << 10);
  EXPECT_GT(churn.stats.cache.evictions + churn.stats.cache.admission_rejects,
            0u);
}

TEST(CachedEngineTest, WeightedAndCompressedStoresServeCorrectHits) {
  ScratchDir scratch("cache_variants");
  EdgeList g = gen::with_random_weights(test_graph(), /*seed=*/99);

  // Weighted store: SSSP exercises the weighted decode path of cached blocks.
  DualBlockStore wstore =
      DualBlockStore::build(g, scratch / "wstore", StoreOptions{4});
  auto run_sssp = [&](std::uint64_t budget) {
    EngineOptions o = base_options();
    o.cache_budget_bytes = budget;
    Engine e(wstore, o);
    SsspProgram p{.source = 0};
    return e.run(p, Frontier::single(wstore.meta(), 0, wstore.out_degrees()));
  };
  auto ref = run_sssp(0);
  auto cached = run_sssp(256ull << 20);
  EXPECT_EQ(cached.values, ref.values);
  EXPECT_GT(cached.stats.cache.hits, 0u);

  // Codec store: cached payloads stay encoded (admission charges the smaller
  // on-disk bytes) and hits decode from the resident copy.
  StoreOptions copts{4};
  copts.codec = BlockCodecKind::kDeltaVarint;
  DualBlockStore cstore = DualBlockStore::build(gen::rmat(10, 8.0, 7),
                                                scratch / "cstore", copts);
  EngineOptions o = base_options();
  o.mode = UpdateMode::kCop;
  o.cache_budget_bytes = 256ull << 20;
  o.max_iterations = 3;
  Engine e(cstore, o);
  PageRankProgram p;
  auto pr = e.run(p, Frontier::all(cstore.meta(), cstore.out_degrees()));

  EngineOptions uo = base_options();
  uo.mode = UpdateMode::kCop;
  uo.max_iterations = 3;
  Engine ue(cstore, uo);
  PageRankProgram up;
  auto upr = ue.run(up, Frontier::all(cstore.meta(), cstore.out_degrees()));
  EXPECT_EQ(pr.values, upr.values);
  EXPECT_GT(pr.stats.cache.hits, 0u);
  EXPECT_GT(pr.stats.cache.bytes_saved, 0u);
}

TEST(CachedEngineTest, AdmissionRaceFallbackServesJustReadBytes) {
  // Exercises the fill path's "admission raced or was rejected" branch in
  // CachedBlockReader::load_out_edges: the block passes the admissibility
  // gate (it fits the budget) but insert() fails because the whole budget is
  // pinned, and the reader must serve the just-read bytes anyway.
  ScratchDir scratch("cache_admit_race");
  DualBlockStore store =
      DualBlockStore::build(test_graph(), scratch / "store", StoreOptions{4});
  const StoreMeta& meta = store.meta();
  std::uint32_t ti = 0, tj = 0;
  for (std::uint32_t i = 0; i < meta.p(); ++i) {
    for (std::uint32_t j = 0; j < meta.p(); ++j) {
      if (meta.out_block(i, j).edge_count > 0) {
        ti = i;
        tj = j;
      }
    }
  }
  const BlockExtent& block = meta.out_block(ti, tj);
  ASSERT_GT(block.edge_count, 0u);

  // Budget exactly one target block, then pin an unrelated entry that fills
  // it completely: make_room cannot evict a pinned entry, so the fill's
  // insert is rejected even though the block itself is admissible.
  BlockCache cache({block.adj_bytes, /*max_block_fraction=*/1.0});
  ASSERT_EQ(cache.max_admissible_bytes(), block.adj_bytes);
  BlockCache::PinnedBytes pin =
      cache.insert(BlockKey{BlockKind::kInIdx, 999, 999},
                   std::vector<char>(block.adj_bytes, '\x5a'), block.adj_bytes);
  ASSERT_NE(pin, nullptr);

  CachedBlockReader reader(store, &cache, /*fill_rop=*/true);
  AdjacencyBuffer buf;
  AdjacencySlice served = reader.load_out_edges(
      ti, tj, 0, static_cast<std::uint32_t>(block.edge_count), buf);

  AdjacencyBuffer direct_buf;
  AdjacencySlice direct = store.load_out_edges(
      ti, tj, 0, static_cast<std::uint32_t>(block.edge_count), direct_buf);
  ASSERT_EQ(served.neighbors.size(), direct.neighbors.size());
  for (std::size_t k = 0; k < served.neighbors.size(); ++k) {
    EXPECT_EQ(served.neighbors[k], direct.neighbors[k]) << "edge " << k;
  }

  CacheStats local = reader.local_stats();
  EXPECT_EQ(local.misses, 1u);
  EXPECT_EQ(local.admission_rejects, 1u);
  EXPECT_EQ(local.insertions, 0u);
  EXPECT_FALSE(cache.contains(BlockKey{BlockKind::kOutAdj, ti, tj}));
  // The pinned filler survived the failed sweep untouched.
  EXPECT_EQ((*pin)[0], '\x5a');
}

// ---------------------------------------------------------------------------
// Cache-aware predictor.

TEST(CacheAwarePredictorTest, CachedBytesShrinkBothCosts) {
  DeviceProfile dev = DeviceProfile::hdd7200();
  IoCostPredictor exact(dev, PredictorFlavor::kDeviceExact, /*alpha=*/0);
  IoCostPredictor aware(dev, PredictorFlavor::kCacheAware, /*alpha=*/0);

  PredictionInputs in;
  in.active_vertices = 100;
  in.active_degree_sum = 1600;
  in.num_vertices = 1 << 16;
  in.num_edges = 1 << 20;
  in.p = 8;
  in.column_edge_bytes = 4ull << 20;
  in.row_edge_bytes = 4ull << 20;

  // Nothing cached: identical to device-exact.
  Prediction base = exact.predict(in);
  Prediction cold = aware.predict(in);
  EXPECT_DOUBLE_EQ(cold.c_rop, base.c_rop);
  EXPECT_DOUBLE_EQ(cold.c_cop, base.c_cop);

  // Half the row cached halves the ROP cost's edge component.
  in.cached_row_edge_bytes = in.row_edge_bytes / 2;
  Prediction half = aware.predict(in);
  EXPECT_LT(half.c_rop, base.c_rop);
  EXPECT_DOUBLE_EQ(half.c_cop, base.c_cop);

  // A fully cached column makes COP stream only vertex values.
  in.cached_row_edge_bytes = 0;
  in.cached_column_edge_bytes = in.column_edge_bytes;
  Prediction warm = aware.predict(in);
  EXPECT_LT(warm.c_cop, base.c_cop);
  EXPECT_DOUBLE_EQ(warm.c_rop, base.c_rop);
}

TEST(CacheAwarePredictorTest, WarmColumnFlipsDecisionToCop) {
  // A sparse frontier on an HDD: device-exact picks ROP. With the whole
  // column resident, the cache-aware flavor must flip to (free) COP.
  DeviceProfile dev = DeviceProfile::hdd7200();
  IoCostPredictor exact(dev, PredictorFlavor::kDeviceExact, /*alpha=*/0);
  IoCostPredictor aware(dev, PredictorFlavor::kCacheAware, /*alpha=*/0);

  PredictionInputs in;
  in.active_vertices = 1;
  in.active_degree_sum = 8;
  in.num_vertices = 1 << 16;
  in.num_edges = 1 << 22;
  in.p = 4;
  in.column_edge_bytes = 64ull << 20;
  in.row_edge_bytes = 64ull << 20;

  ASSERT_TRUE(exact.predict(in).choose_rop);
  EXPECT_TRUE(aware.predict(in).choose_rop);

  in.cached_column_edge_bytes = in.column_edge_bytes;
  EXPECT_FALSE(aware.predict(in).choose_rop);
  // The exact flavor ignores cache state by design.
  EXPECT_TRUE(exact.predict(in).choose_rop);
}

// ---------------------------------------------------------------------------
// Multi-reader sharing (the GraphService configuration: one cache, one
// CachedBlockReader per job, concurrent mixed ROP/COP access).

TEST(SharedCacheTest, CrossJobHitAttribution) {
  BlockCache cache({1 << 14, 1.0});
  BlockKey key{BlockKind::kInAdj, 1, 2};
  ASSERT_NE(cache.insert(key, payload_of(1, 2, 128), 128, /*owner=*/1),
            nullptr);
  EXPECT_NE(cache.find(key, /*owner=*/1), nullptr);  // own hit
  EXPECT_EQ(cache.stats().cross_job_hits, 0u);
  EXPECT_NE(cache.find(key, /*owner=*/2), nullptr);  // another job's hit
  EXPECT_NE(cache.find(key, /*owner=*/0), nullptr);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.cross_job_hits, 2u);
}

TEST(SharedCacheTest, DefaultOwnerNeverCountsCrossJobHits) {
  // Standalone engines use owner 0 everywhere; their hits must not read as
  // cross-job traffic.
  BlockCache cache({1 << 14, 1.0});
  BlockKey key{BlockKind::kOutIdx, 0, 0};
  ASSERT_NE(cache.insert(key, payload_of(0, 0, 64), 64), nullptr);
  EXPECT_NE(cache.find(key), nullptr);
  EXPECT_EQ(cache.stats().cross_job_hits, 0u);
}

TEST(SharedCacheTest, ConcurrentMixedReadersStayUnderBudgetAndBalance) {
  // N threads, each with its own owner-tagged CachedBlockReader over one
  // shared cache, interleaving ROP point loads with COP streams while a
  // deliberately small budget forces constant eviction. Invariants: the
  // budget holds under concurrency, payloads a reader holds pinned stay
  // valid, and the global hit/miss totals equal the sum of the per-reader
  // ledgers (nothing lost, nothing double-counted).
  ScratchDir scratch("cache_shared_readers");
  DualBlockStore store =
      DualBlockStore::build(test_graph(), scratch / "store", StoreOptions{4});
  const StoreMeta& meta = store.meta();

  BlockCache cache({/*budget_bytes=*/24 << 10, /*max_block_fraction=*/0.5});
  constexpr int kThreads = 4;
  constexpr int kRounds = 30;
  std::vector<std::unique_ptr<CachedBlockReader>> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.push_back(std::make_unique<CachedBlockReader>(
        store, &cache, /*fill_rop=*/true,
        /*owner=*/static_cast<std::uint32_t>(t + 1)));
  }
  std::atomic<int> bad{0};
  std::atomic<std::uint64_t> budget_violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const CachedBlockReader& reader = *readers[t];
      AdjacencyBuffer buf;
      std::vector<std::uint32_t> idx;
      for (int round = 0; round < kRounds; ++round) {
        for (std::uint32_t i = 0; i < meta.p(); ++i) {
          for (std::uint32_t j = 0; j < meta.p(); ++j) {
            if ((round + t) % 2 == 0) {
              // ROP flavor: index + point loads of a few vertex runs.
              reader.load_out_index(i, j, idx);
              const VertexId count = meta.interval_size(i);
              for (VertexId v = t; v < count; v += 97) {
                std::uint32_t lo = idx[v], hi = idx[v + 1];
                if (lo == hi) continue;
                AdjacencySlice s = reader.load_out_edges(i, j, lo, hi, buf);
                if (s.neighbors.size() != hi - lo) bad.fetch_add(1);
              }
            } else {
              // COP flavor: stream the whole in-block.
              reader.load_in_index(i, j, idx);
              AdjacencySlice s = reader.stream_in_block(i, j, buf);
              if (s.neighbors.size() != meta.in_block(i, j).edge_count) {
                bad.fetch_add(1);
              }
            }
            if (cache.resident_bytes() > cache.budget_bytes()) {
              budget_violations.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(budget_violations.load(), 0u);
  EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());

  CacheStats global = cache.stats();
  CacheStats local_sum;
  for (const auto& reader : readers) local_sum += reader->local_stats();
  EXPECT_EQ(local_sum.hits, global.hits);
  EXPECT_EQ(local_sum.misses, global.misses);
  EXPECT_GT(global.hits, 0u);
  // Deterministic cross-owner witness (the storm above may, rarely, evict
  // every block between its cross-owner touches): owner 1 loads an index —
  // insert or hit, the resident entry's owner is now != 2 — then owner 2
  // loads the same one, which must count as a cross-job hit.
  std::vector<std::uint32_t> idx;
  readers[0]->load_in_index(0, 0, idx);
  readers[1]->load_in_index(0, 0, idx);
  EXPECT_GT(cache.stats().cross_job_hits, 0u);
}

TEST(SharedCacheTest, SharedEngineReportsLocalShareOnly) {
  // Two engines over one shared cache: each engine's cache_stats() is its
  // own charge ledger, and the two ledgers sum to the cache's activity.
  ScratchDir scratch("cache_shared_engines");
  DualBlockStore store =
      DualBlockStore::build(test_graph(), scratch / "store", StoreOptions{4});
  BlockCache cache({64ull << 20, 0.25});

  auto run_pr = [&](std::uint32_t owner) {
    EngineOptions o = base_options();
    o.shared_cache = &cache;
    o.cache_owner = owner;
    o.max_iterations = 2;
    Engine e(store, o);
    PageRankProgram p;
    e.run(p, Frontier::all(store.meta(), store.out_degrees()));
    return e.cache_stats();
  };
  CacheStats first = run_pr(1);
  CacheStats second = run_pr(2);
  EXPECT_GT(first.misses, 0u);   // cold cache
  EXPECT_GT(second.hits, 0u);    // warmed by the first engine
  EXPECT_EQ(second.misses, 0u);  // fully resident
  CacheStats global = cache.stats();
  EXPECT_EQ(first.hits + second.hits, global.hits);
  EXPECT_EQ(first.misses + second.misses, global.misses);
  // Every one of the second engine's hits landed on blocks owner 1 cached.
  EXPECT_EQ(global.cross_job_hits, second.hits);
}

}  // namespace
}  // namespace husg
