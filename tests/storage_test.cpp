// Dual-block store invariants: partitioning, round-trips, index consistency,
// I/O classification, and corrupt-store rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "graph/generators.hpp"
#include "algos/wcc.hpp"
#include "core/engine.hpp"
#include "graph/reference.hpp"
#include "storage/store.hpp"
#include "util/varint.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

EdgeList sorted_copy(const EdgeList& g) {
  std::vector<Edge> e(g.edges().begin(), g.edges().end());
  EdgeList c = g.weighted()
                   ? EdgeList(g.num_vertices(), std::move(e),
                              std::vector<Weight>(g.weights().begin(),
                                                  g.weights().end()))
                   : EdgeList(g.num_vertices(), std::move(e));
  c.sort_and_maybe_dedupe(false);
  return c;
}

// --- Partitioning ----------------------------------------------------------------

TEST(Boundaries, EqualVerticesCoverRange) {
  EdgeList g = gen::erdos_renyi(103, 200, 1);
  for (std::uint32_t p : {1u, 2u, 5u, 103u}) {
    auto b = compute_boundaries(g, p, PartitionScheme::kEqualVertices);
    ASSERT_EQ(b.size(), p + 1);
    EXPECT_EQ(b.front(), 0u);
    EXPECT_EQ(b.back(), 103u);
    for (std::size_t k = 0; k + 1 < b.size(); ++k) EXPECT_LE(b[k], b[k + 1]);
  }
}

TEST(Boundaries, EqualDegreeBalancesMass) {
  // Hub-heavy star: degree balancing must isolate the hub.
  EdgeList g = gen::star(1000);
  auto b = compute_boundaries(g, 4, PartitionScheme::kEqualDegree);
  ASSERT_EQ(b.size(), 5u);
  // The hub (vertex 0, degree 999) dominates: the first interval should be
  // much smaller than |V|/4.
  EXPECT_LT(b[1], 250u);
}

TEST(Boundaries, MorePartitionsThanVerticesYieldsEmptyIntervals) {
  EdgeList g = gen::chain(3);
  auto b = compute_boundaries(g, 8, PartitionScheme::kEqualVertices);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 3u);
  // Store must still build and answer queries.
  ScratchDir dir("tiny");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{8});
  EXPECT_EQ(store.reconstruct_edges().num_edges(), 2u);
}

// --- Build / open round trip --------------------------------------------------------

class StoreRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StoreRoundTrip, ReconstructsEdgeMultiset) {
  EdgeList g = gen::rmat(9, 6.0, 77);
  ScratchDir dir("rt");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{GetParam()});
  EdgeList back = store.reconstruct_edges();
  EdgeList want = sorted_copy(g);
  ASSERT_EQ(back.num_edges(), want.num_edges());
  for (EdgeId i = 0; i < want.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i), want.edge(i)) << "edge " << i;
  }
}

TEST_P(StoreRoundTrip, WeightedReconstruction) {
  EdgeList g = gen::with_random_weights(gen::erdos_renyi(200, 900, 3), 3);
  ScratchDir dir("rtw");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{GetParam()});
  ASSERT_TRUE(store.meta().weighted);
  EXPECT_EQ(store.meta().edge_record_bytes(), 8u);
  EdgeList back = store.reconstruct_edges();
  EdgeList want = sorted_copy(g);
  ASSERT_EQ(back.num_edges(), want.num_edges());
  // Multiset of (src,dst,weight) must match; duplicates of (src,dst) may
  // permute within a run, so compare sorted weight runs.
  EdgeId i = 0;
  while (i < want.num_edges()) {
    EdgeId j = i;
    std::vector<float> a, b;
    while (j < want.num_edges() && want.edge(j) == want.edge(i)) {
      a.push_back(want.weight(j));
      b.push_back(back.weight(j));
      EXPECT_EQ(back.edge(j), want.edge(j));
      ++j;
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    i = j;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, StoreRoundTrip,
                         ::testing::Values(1, 2, 3, 8, 16));

class BuildModeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuildModeSweep, ExternalBuildMatchesInMemoryBuild) {
  EdgeList g = gen::rmat(8, 7.0, GetParam());
  ScratchDir dir_a("bm_mem"), dir_b("bm_ext");
  StoreOptions mem_opts{4};
  StoreOptions ext_opts{4};
  ext_opts.build_mode = BuildMode::kExternal;
  auto a = DualBlockStore::build(g, dir_a.path(), mem_opts);
  auto b = DualBlockStore::build(g, dir_b.path(), ext_opts);
  // Identical directory metadata...
  ASSERT_EQ(a.meta().boundaries, b.meta().boundaries);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      EXPECT_EQ(a.meta().out_block(i, j).edge_count,
                b.meta().out_block(i, j).edge_count);
      EXPECT_EQ(a.meta().in_block(i, j).adj_bytes,
                b.meta().in_block(i, j).adj_bytes);
    }
  }
  // ...and identical edge content.
  EdgeList ea = a.reconstruct_edges();
  EdgeList eb = b.reconstruct_edges();
  ASSERT_EQ(ea.num_edges(), eb.num_edges());
  for (EdgeId k = 0; k < ea.num_edges(); ++k) {
    ASSERT_EQ(ea.edge(k), eb.edge(k));
  }
  // Temp bucket files are cleaned up.
  for (const auto& entry : std::filesystem::directory_iterator(dir_b.path())) {
    EXPECT_EQ(entry.path().filename().string().find("bucket_"),
              std::string::npos)
        << "leftover temp file " << entry.path();
  }
}

TEST_P(BuildModeSweep, ExternalBuildWeighted) {
  EdgeList g = gen::with_random_weights(gen::erdos_renyi(100, 600, GetParam()),
                                        GetParam());
  ScratchDir dir("bm_w");
  StoreOptions opts{3};
  opts.build_mode = BuildMode::kExternal;
  auto store = DualBlockStore::build(g, dir.path(), opts);
  ASSERT_TRUE(store.meta().weighted);
  EdgeList back = store.reconstruct_edges();
  EdgeList want = sorted_copy(g);
  ASSERT_EQ(back.num_edges(), want.num_edges());
  double weight_sum_back = 0, weight_sum_want = 0;
  for (EdgeId k = 0; k < want.num_edges(); ++k) {
    ASSERT_EQ(back.edge(k), want.edge(k));
    weight_sum_back += back.weight(k);
    weight_sum_want += want.weight(k);
  }
  EXPECT_NEAR(weight_sum_back, weight_sum_want, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuildModeSweep, ::testing::Values(1, 7, 23));

// --- Codec-compressed blocks -----------------------------------------------------

class CompressionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompressionSweep, CompressedStoreEqualsUncompressed) {
  EdgeList g = gen::rmat(8, 8.0, GetParam());
  ScratchDir dir_a("cmp_raw"), dir_b("cmp_varint");
  auto raw = DualBlockStore::build(g, dir_a.path(), StoreOptions{4});
  StoreOptions copts{4};
  copts.codec = BlockCodecKind::kDeltaVarint;
  auto comp = DualBlockStore::build(g, dir_b.path(), copts);
  ASSERT_EQ(comp.meta().codec, BlockCodecKind::kDeltaVarint);

  AdjacencyBuffer buf_a, buf_b;
  std::vector<std::uint32_t> idx_a, idx_b;
  std::uint64_t raw_in = 0, comp_in = 0, raw_out = 0, comp_out = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      // COP side: same indices, same decoded stream.
      raw.load_in_index(i, j, idx_a);
      comp.load_in_index(i, j, idx_b);
      ASSERT_EQ(idx_a, idx_b);
      auto sa = raw.stream_in_block(i, j, buf_a);
      auto sb = comp.stream_in_block(i, j, buf_b);
      ASSERT_EQ(sa.neighbors.size(), sb.neighbors.size());
      for (std::size_t k = 0; k < sa.neighbors.size(); ++k) {
        ASSERT_EQ(sa.neighbors[k], sb.neighbors[k]);
      }
      raw_in += raw.meta().in_block(i, j).adj_bytes;
      comp_in += comp.meta().in_block(i, j).adj_bytes;

      // ROP side: identical point loads through the decoded memo.
      const BlockExtent& ob = raw.meta().out_block(i, j);
      auto oa = raw.load_out_edges(
          i, j, 0, static_cast<std::uint32_t>(ob.edge_count), buf_a);
      auto ob2 = comp.load_out_edges(
          i, j, 0, static_cast<std::uint32_t>(ob.edge_count), buf_b);
      ASSERT_EQ(oa.neighbors.size(), ob2.neighbors.size());
      for (std::size_t k = 0; k < oa.neighbors.size(); ++k) {
        ASSERT_EQ(oa.neighbors[k], ob2.neighbors[k]);
      }
      raw_out += raw.meta().out_block(i, j).adj_bytes;
      comp_out += comp.meta().out_block(i, j).adj_bytes;
    }
  }
  // Delta-varint on sorted runs must actually shrink both sides, even with
  // the 32-byte per-block codec header.
  EXPECT_LT(comp_in, raw_in * 3 / 4);
  EXPECT_LT(comp_out, raw_out * 3 / 4);
}

TEST_P(CompressionSweep, EngineResultsIdenticalOnCompressedStore) {
  EdgeList g = gen::rmat(8, 6.0, GetParam()).symmetrized();
  ScratchDir dir("cmp_eng");
  StoreOptions copts{4};
  copts.codec = BlockCodecKind::kDeltaVarint;
  auto store = DualBlockStore::build(g, dir.path(), copts);
  for (UpdateMode mode :
       {UpdateMode::kRop, UpdateMode::kCop, UpdateMode::kHybrid}) {
    EngineOptions o;
    o.mode = mode;
    Engine engine(store, o);
    WccProgram wcc;
    auto r = engine.run(wcc, Frontier::all(store.meta(), store.out_degrees()));
    auto want = ref::wcc_labels(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(r.values[v], want[v]) << to_string(mode) << " vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionSweep, ::testing::Values(3, 11, 29));

TEST(Compression, WeightedStoreRejected) {
  EdgeList g = gen::with_random_weights(gen::chain(10), 1);
  ScratchDir dir("cmp_w");
  StoreOptions copts{2};
  copts.codec = BlockCodecKind::kDeltaVarint;
  EXPECT_THROW(DualBlockStore::build(g, dir.path(), copts), DataError);
}

TEST(Compression, CorruptedBlockDetectedOnDecode) {
  EdgeList g = gen::erdos_renyi(64, 400, 21);
  ScratchDir dir("cmp_corrupt");
  StoreOptions copts{2};
  copts.codec = BlockCodecKind::kDeltaVarint;
  DualBlockStore::build(g, dir.path(), copts);
  {
    // Flip a payload byte past every block's 32-byte header: the decode
    // checksum must reject it even though sizes are untouched.
    File f(dir / "in.adj", File::Mode::kReadWrite);
    std::uint64_t off = f.size() / 2;
    char b;
    f.pread_exact(&b, 1, off);
    b = static_cast<char>(b ^ 0x5A);
    f.pwrite_exact(&b, 1, off);
  }
  auto store = DualBlockStore::open(dir.path());  // structure still OK
  AdjacencyBuffer buf;
  bool threw = false;
  for (std::uint32_t i = 0; i < 2 && !threw; ++i) {
    for (std::uint32_t j = 0; j < 2 && !threw; ++j) {
      try {
        store.stream_in_block(i, j, buf);
      } catch (const DataError&) {
        threw = true;
      }
    }
  }
  EXPECT_TRUE(threw) << "no in-block detected the flipped byte";
}

TEST(Varint, RoundTripAndErrors) {
  std::vector<char> out;
  std::vector<std::uint32_t> values = {0, 1, 127, 128, 300, 1u << 20,
                                       0xFFFFFFFFu};
  for (auto v : values) varint_encode(v, out);
  std::size_t pos = 0;
  for (auto v : values) {
    EXPECT_EQ(varint_decode(out.data(), out.size(), pos), v);
  }
  EXPECT_EQ(pos, out.size());
  // Truncation detected.
  pos = 0;
  EXPECT_THROW(varint_decode(out.data(), 0, pos), DataError);
  // Overlong encoding detected.
  std::vector<char> bad(6, static_cast<char>(0x80));
  pos = 0;
  EXPECT_THROW(varint_decode(bad.data(), bad.size(), pos), DataError);
}

TEST(Store, OpenAfterBuildSeesSameMeta) {
  EdgeList g = gen::rmat(8, 4.0, 5);
  ScratchDir dir("open");
  StoreOptions opt{4, PartitionScheme::kEqualDegree};
  auto built = DualBlockStore::build(g, dir.path(), opt);
  auto opened = DualBlockStore::open(dir.path());
  EXPECT_EQ(opened.meta().num_vertices, built.meta().num_vertices);
  EXPECT_EQ(opened.meta().num_edges, built.meta().num_edges);
  EXPECT_EQ(opened.meta().boundaries, built.meta().boundaries);
  EXPECT_EQ(opened.out_degrees().size(), g.num_vertices());
  EXPECT_EQ(std::vector<VertexId>(opened.out_degrees().begin(),
                                  opened.out_degrees().end()),
            g.out_degrees());
}

// --- Index invariants ---------------------------------------------------------------

TEST(Store, IndicesAreMonotoneAndComplete) {
  EdgeList g = gen::rmat(8, 8.0, 9);
  ScratchDir dir("idx");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  const StoreMeta& meta = store.meta();
  std::vector<std::uint32_t> idx;
  std::uint64_t total_out = 0, total_in = 0;
  for (std::uint32_t i = 0; i < meta.p(); ++i) {
    for (std::uint32_t j = 0; j < meta.p(); ++j) {
      store.load_out_index(i, j, idx);
      ASSERT_EQ(idx.size(), meta.interval_size(i) + 1u);
      EXPECT_EQ(idx.front(), 0u);
      EXPECT_EQ(idx.back(), meta.out_block(i, j).edge_count);
      for (std::size_t k = 0; k + 1 < idx.size(); ++k) {
        EXPECT_LE(idx[k], idx[k + 1]);
      }
      total_out += meta.out_block(i, j).edge_count;

      store.load_in_index(i, j, idx);
      ASSERT_EQ(idx.size(), meta.interval_size(j) + 1u);
      EXPECT_EQ(idx.back(), meta.in_block(i, j).edge_count);
      total_in += meta.in_block(i, j).edge_count;
    }
  }
  EXPECT_EQ(total_out, g.num_edges());
  EXPECT_EQ(total_in, g.num_edges());
}

TEST(Store, OutBlockTargetsStayInDestinationInterval) {
  EdgeList g = gen::rmat(8, 6.0, 11);
  ScratchDir dir("tgt");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{4});
  const StoreMeta& meta = store.meta();
  AdjacencyBuffer buf;
  for (std::uint32_t i = 0; i < meta.p(); ++i) {
    for (std::uint32_t j = 0; j < meta.p(); ++j) {
      const BlockExtent& b = meta.out_block(i, j);
      auto slice = store.load_out_edges(
          i, j, 0, static_cast<std::uint32_t>(b.edge_count), buf);
      for (VertexId d : slice.neighbors) {
        EXPECT_GE(d, meta.interval_begin(j));
        EXPECT_LT(d, meta.interval_end(j));
      }
    }
  }
}

TEST(Store, InBlockSourcesStayInSourceInterval) {
  EdgeList g = gen::rmat(8, 6.0, 13);
  ScratchDir dir("src");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{3});
  const StoreMeta& meta = store.meta();
  AdjacencyBuffer buf;
  for (std::uint32_t i = 0; i < meta.p(); ++i) {
    for (std::uint32_t j = 0; j < meta.p(); ++j) {
      auto slice = store.stream_in_block(i, j, buf);
      for (VertexId s : slice.neighbors) {
        EXPECT_GE(s, meta.interval_begin(i));
        EXPECT_LT(s, meta.interval_end(i));
      }
    }
  }
}

TEST(StoreMetaTest, IntervalOfLookup) {
  EdgeList g = gen::chain(10);
  ScratchDir dir("iof");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{3});
  const StoreMeta& meta = store.meta();
  for (VertexId v = 0; v < 10; ++v) {
    std::uint32_t i = meta.interval_of(v);
    EXPECT_GE(v, meta.interval_begin(i));
    EXPECT_LT(v, meta.interval_end(i));
  }
  EXPECT_THROW(meta.interval_of(10), DataError);
}

// --- I/O classification ---------------------------------------------------------------

TEST(Store, PointLoadsChargeRandomStreamsChargeSequential) {
  EdgeList g = gen::rmat(8, 8.0, 15);
  ScratchDir dir("cls");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  IoSnapshot base = store.io().snapshot();
  AdjacencyBuffer buf;
  store.load_out_edges(0, 0, 0, 5, buf);
  IoSnapshot after_point = store.io().snapshot() - base;
  EXPECT_EQ(after_point.rand_read_ops, 1u);
  EXPECT_EQ(after_point.rand_read_bytes, 5 * sizeof(VertexId));

  base = store.io().snapshot();
  store.stream_in_block(0, 0, buf);
  IoSnapshot after_stream = store.io().snapshot() - base;
  EXPECT_GT(after_stream.seq_read_ops, 0u);
  EXPECT_EQ(after_stream.rand_read_ops, 0u);
  EXPECT_EQ(after_stream.seq_read_bytes,
            store.meta().in_block(0, 0).adj_bytes);
}

// --- Checksums -----------------------------------------------------------------

TEST(StoreChecksum, VerifyPassesOnIntactStore) {
  EdgeList g = gen::rmat(8, 6.0, 19);
  ScratchDir dir("ck1");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{3});
  EXPECT_NO_THROW(store.verify());
}

TEST(StoreChecksum, VerifyDetectsSingleFlippedByte) {
  EdgeList g = gen::rmat(8, 6.0, 19);
  ScratchDir dir("ck2");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{3});
  // Flip one byte deep inside the adjacency data. Structural validation in
  // open() cannot catch this (sizes are unchanged); verify() must.
  {
    File f(dir / "in.adj", File::Mode::kReadWrite);
    std::uint64_t off = f.size() / 2;
    char b;
    f.pread_exact(&b, 1, off);
    b = static_cast<char>(b ^ 0x40);
    f.pwrite_exact(&b, 1, off);
  }
  auto reopened = DualBlockStore::open(dir.path());  // structure still OK
  EXPECT_THROW(reopened.verify(), DataError);
}

TEST(StoreChecksum, VerifyDetectsDegreeTampering) {
  EdgeList g = gen::chain(64);
  ScratchDir dir("ck3");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  {
    File f(dir / "degrees.bin", File::Mode::kReadWrite);
    VertexId forged = 999;
    f.pwrite_exact(&forged, sizeof(forged), 12);
  }
  auto reopened = DualBlockStore::open(dir.path());
  EXPECT_THROW(reopened.verify(), DataError);
}

// --- Failure injection -------------------------------------------------------------------

TEST(StoreFailure, MissingDirectory) {
  EXPECT_THROW(DualBlockStore::open("/nonexistent/husg_store"), IoError);
}

TEST(StoreFailure, BadMagicRejected) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("bad1");
  DualBlockStore::build(g, dir.path(), StoreOptions{2});
  {
    std::fstream f(dir / "meta.bin", std::ios::in | std::ios::out |
                                          std::ios::binary);
    f.seekp(0);
    std::uint64_t junk = 0x1234;
    f.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(DualBlockStore::open(dir.path()), DataError);
}

TEST(StoreFailure, TruncatedAdjacencyRejected) {
  EdgeList g = gen::erdos_renyi(64, 300, 17);
  ScratchDir dir("bad2");
  DualBlockStore::build(g, dir.path(), StoreOptions{2});
  std::filesystem::resize_file(
      dir / "out.adj", std::filesystem::file_size(dir / "out.adj") - 4);
  EXPECT_THROW(DualBlockStore::open(dir.path()), DataError);
}

TEST(StoreFailure, TruncatedMetaRejected) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("bad3");
  DualBlockStore::build(g, dir.path(), StoreOptions{2});
  std::filesystem::resize_file(
      dir / "meta.bin", std::filesystem::file_size(dir / "meta.bin") - 8);
  EXPECT_THROW(DualBlockStore::open(dir.path()), DataError);
}

TEST(StoreFailure, TruncatedDegreesRejected) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("bad4");
  DualBlockStore::build(g, dir.path(), StoreOptions{2});
  std::filesystem::resize_file(dir / "degrees.bin", 4);
  EXPECT_THROW(DualBlockStore::open(dir.path()), DataError);
}

TEST(StoreFailure, ZeroPartitionsRejected) {
  EdgeList g = gen::chain(8);
  ScratchDir dir("bad5");
  EXPECT_THROW(DualBlockStore::build(g, dir.path(), StoreOptions{0}),
               DataError);
}

// --- Paper Figure 4 worked example ----------------------------------------------------------

TEST(Store, Figure4BlockEdgeCounts) {
  // The paper's example: 10 vertices in two intervals of 5; the dual-block
  // figure lists each block's edges, so the per-block counts are known.
  EdgeList g = testing::figure4_graph();
  ScratchDir dir("fig4");
  auto store = DualBlockStore::build(g, dir.path(), StoreOptions{2});
  const StoreMeta& meta = store.meta();
  // in-block (1,1) in the paper: 6 edges; (2,1): 9; (1,2): 7; (2,2): 7.
  EXPECT_EQ(meta.in_block(0, 0).edge_count, 6u);
  EXPECT_EQ(meta.in_block(1, 0).edge_count, 9u);
  EXPECT_EQ(meta.in_block(0, 1).edge_count, 7u);
  EXPECT_EQ(meta.in_block(1, 1).edge_count, 7u);
  // Out-blocks partition the same edges by source interval.
  EXPECT_EQ(meta.out_block(0, 0).edge_count, 6u);
  EXPECT_EQ(meta.out_block(0, 1).edge_count, 7u);
  EXPECT_EQ(meta.out_block(1, 0).edge_count, 9u);
  EXPECT_EQ(meta.out_block(1, 1).edge_count, 7u);
}

}  // namespace
}  // namespace husg
