// Tests for the embedded admin HTTP server (src/obs/http_server.{hpp,cpp})
// and the /jobs JSON snapshot: route dispatch through handle_request (no
// sockets), a raw-socket end-to-end pass against an ephemeral port, and the
// scheduler's live JobView snapshots.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "husg/husg.hpp"

namespace husg {
namespace {

using obs::AdminOptions;
using obs::AdminServer;

// ---------------------------------------------------------------------------
// Route dispatch (pure, no sockets).

TEST(AdminRoutesTest, HealthzAndReadyz) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  auto res = server.handle_request("GET", "/healthz", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ok\n");

  // Default: ready (no hook installed).
  EXPECT_EQ(server.handle_request("GET", "/readyz", "").status, 200);

  bool ready = false;
  server.set_ready([&ready] { return ready; });
  EXPECT_EQ(server.handle_request("GET", "/readyz", "").status, 503);
  ready = true;
  EXPECT_EQ(server.handle_request("GET", "/readyz", "").status, 200);

  EXPECT_EQ(server.handle_request("POST", "/healthz", "").status, 405);
}

TEST(AdminRoutesTest, MetricsScrapesRegistryWithPreScrapeHook) {
  obs::Registry reg;
  reg.counter("admin_test_requests_total", "Requests seen").inc(7);
  AdminServer server(AdminOptions{}, reg);
  int scrapes = 0;
  server.set_pre_scrape([&scrapes](obs::Registry& r) {
    ++scrapes;
    r.gauge("admin_test_live_gauge", "Refreshed per scrape")
        .set(static_cast<double>(scrapes));
  });

  auto res = server.handle_request("GET", "/metrics", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(res.body.find("# TYPE admin_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(res.body.find("admin_test_requests_total 7"), std::string::npos);
  EXPECT_NE(res.body.find("admin_test_live_gauge 1"), std::string::npos);

  // The hook runs on every scrape and gauges track the latest value —
  // repeated scrapes must not accumulate anything.
  res = server.handle_request("GET", "/metrics", "");
  EXPECT_NE(res.body.find("admin_test_live_gauge 2"), std::string::npos);
  EXPECT_NE(res.body.find("admin_test_requests_total 7"), std::string::npos);
  EXPECT_EQ(scrapes, 2);
}

TEST(AdminRoutesTest, JobsRouteUsesHookOr404) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  EXPECT_EQ(server.handle_request("GET", "/jobs", "").status, 404);

  server.set_jobs([] {
    std::vector<JobView> jobs(1);
    jobs[0].id = 42;
    jobs[0].name = "pagerank \"hot\"";
    jobs[0].status = JobStatus::kRunning;
    jobs[0].algo = "pagerank";
    jobs[0].priority = 3;
    jobs[0].estimate_bytes = 1024;
    jobs[0].wall_seconds = 0.5;
    return jobs_view_json(jobs);
  });
  auto res = server.handle_request("GET", "/jobs", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"id\": 42"), std::string::npos);
  EXPECT_NE(res.body.find("\"status\": \"running\""), std::string::npos);
  EXPECT_NE(res.body.find("\\\"hot\\\""), std::string::npos)
      << "job names must be JSON-escaped";
  EXPECT_NE(res.body.find("\"priority\": 3"), std::string::npos);
}

TEST(AdminRoutesTest, HeatmapRouteServesLiveProfile) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);

  // Not armed: still a valid JSON document, with an empty grid.
  auto res = server.handle_request("GET", "/heatmap", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"p\": 0"), std::string::npos);

  // Armed mid-"run": the route exposes whatever the profiler has so far.
  obs::Heatmap::instance().start(2);
  obs::Heatmap::instance().record_read(obs::HeatDir::kOut, 1, 0, 512);
  obs::Heatmap::instance().record_hit(obs::HeatDir::kOut, 1, 0);
  res = server.handle_request("GET", "/heatmap", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"p\": 2"), std::string::npos);
  EXPECT_NE(res.body.find("\"reads\": 1"), std::string::npos);
  EXPECT_NE(res.body.find("\"hits\": 1"), std::string::npos);
  EXPECT_NE(res.body.find("\"row_skew\""), std::string::npos);
  obs::Heatmap::instance().clear();

  EXPECT_EQ(server.handle_request("POST", "/heatmap", "").status, 405);
}

TEST(AdminRoutesTest, LogLevelRoundTrip) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  const log::Level before = log::level();

  // Set, then read the effective level back through GET.
  EXPECT_EQ(server.handle_request("POST", "/loglevel", "debug").status, 200);
  EXPECT_EQ(log::level(), log::Level::kDebug);
  auto res = server.handle_request("GET", "/loglevel", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "debug\n");

  EXPECT_EQ(server.handle_request("POST", "/loglevel", "quiet\n").status, 200);
  EXPECT_EQ(log::level(), log::Level::kError);
  EXPECT_EQ(server.handle_request("GET", "/loglevel", "").body, "quiet\n");

  // Garbage neither changes the level nor the read-back.
  EXPECT_EQ(server.handle_request("POST", "/loglevel", "bogus").status, 400);
  EXPECT_EQ(log::level(), log::Level::kError);
  EXPECT_EQ(server.handle_request("GET", "/loglevel", "").body, "quiet\n");
  EXPECT_EQ(server.handle_request("PUT", "/loglevel", "debug").status, 405);

  log::set_level(before);
}

TEST(AdminRoutesTest, ReadyzDegradedServesWatchdogReasons) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);

  // Healthy hook (empty string) leaves /readyz at plain 200 "ready".
  std::string reasons;
  server.set_degraded([&reasons] { return reasons; });
  auto res = server.handle_request("GET", "/readyz", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.body, "ready\n");

  // An active anomaly flips it to 503 with the JSON reason list verbatim.
  reasons =
      "{\"status\":\"degraded\",\"reasons\":[{\"kind\":\"stalled_job\","
      "\"job\":7,\"detail\":\"no heartbeat\"}]}\n";
  res = server.handle_request("GET", "/readyz", "");
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("stalled_job"), std::string::npos);

  // Not-ready outranks degraded.
  server.set_ready([] { return false; });
  res = server.handle_request("GET", "/readyz", "");
  EXPECT_EQ(res.status, 503);
  EXPECT_EQ(res.body, "not ready\n");
}

TEST(AdminRoutesTest, DebugBundleRouteUsesHookOr404) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  EXPECT_EQ(server.handle_request("GET", "/debug/bundle", "").status, 404);

  server.set_bundle([] {
    return std::string("{\"bundle_version\": 1, \"reason\": \"test\"}\n");
  });
  auto res = server.handle_request("GET", "/debug/bundle", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_NE(res.body.find("\"bundle_version\": 1"), std::string::npos);
  EXPECT_EQ(server.handle_request("POST", "/debug/bundle", "").status, 405);
}

TEST(AdminRoutesTest, TraceValidatesWindowAndConflicts) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  EXPECT_EQ(server.handle_request("GET", "/trace", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/trace?ms=", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/trace?ms=abc", "").status, 400);

  // A --trace-out style session owns the tracer: /trace must refuse.
  obs::Tracer::instance().start();
  EXPECT_EQ(server.handle_request("GET", "/trace?ms=5", "").status, 409);
  obs::Tracer::instance().stop();
  obs::Tracer::instance().clear();

  auto res = server.handle_request("GET", "/trace?ms=5", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"traceEvents\""), std::string::npos);
  EXPECT_FALSE(obs::Tracer::instance().enabled())
      << "/trace must disarm the tracer when its window closes";
}

TEST(AdminRoutesTest, ProfileValidatesWindowAndConflicts) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  EXPECT_EQ(server.handle_request("GET", "/profile", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=abc", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=0", "").status, 400);
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=5&hz=0", "").status,
            400);
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=5&hz=9999", "").status,
            400);
  EXPECT_EQ(server.handle_request("POST", "/profile?ms=5", "").status, 405);

  // A --profile-out style session owns the profiler: /profile must refuse.
  ASSERT_TRUE(obs::Profiler::instance().start(97));
  EXPECT_EQ(server.handle_request("GET", "/profile?ms=5", "").status, 409);
  obs::Profiler::instance().stop();
  obs::Profiler::instance().clear();

  // A valid window on an idle process: 200 with a (possibly empty) folded
  // payload, and the profiler must be disarmed when the window closes.
  auto res = server.handle_request("GET", "/profile?ms=5&hz=199", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.content_type.find("text/plain"), std::string::npos);
  EXPECT_FALSE(obs::Profiler::instance().running())
      << "/profile must disarm the profiler when its window closes";
  // Every non-empty line ends in " <count>" (folded-stack well-formedness).
  std::istringstream lines(res.body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
  }
  obs::Profiler::instance().clear();
}

TEST(AdminRoutesTest, CpuRouteServesHookOrEmptyDocument) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  // No scheduler attached: still a well-formed empty payload, not an error.
  auto res = server.handle_request("GET", "/cpu", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_EQ(res.content_type, "application/json");
  EXPECT_EQ(res.body, "{\"jobs\": []}\n");
  EXPECT_EQ(server.handle_request("POST", "/cpu", "").status, 405);

  server.set_cpu([] {
    return std::string(
        "{\"jobs\": [{\"id\": 9, \"cpu_seconds\": 0.25}]}\n");
  });
  res = server.handle_request("GET", "/cpu", "");
  EXPECT_EQ(res.status, 200);
  EXPECT_NE(res.body.find("\"id\": 9"), std::string::npos);
}

TEST(AdminRoutesTest, UnknownPathIs404) {
  obs::Registry reg;
  AdminServer server(AdminOptions{}, reg);
  EXPECT_EQ(server.handle_request("GET", "/nope", "").status, 404);
}

// ---------------------------------------------------------------------------
// Socket end-to-end on an ephemeral port.

/// Minimal HTTP client: one request, reads until the server closes.
std::string http_request(std::uint16_t port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t off = 0;
  while (off < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + off, raw.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET " + target +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(AdminServerTest, ServesOverRealSockets) {
  obs::Registry reg;
  reg.counter("admin_e2e_total", "E2E marker").inc(3);
  AdminOptions opts;
  opts.port = 0;  // ephemeral: parallel test runs must not collide
  AdminServer server(opts, reg);
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  std::string health = get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);

  std::string metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("admin_e2e_total 3"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain"), std::string::npos);

  const log::Level before = log::level();
  std::string post = http_request(
      server.port(),
      "POST /loglevel HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 4\r\nConnection: close\r\n\r\ninfo");
  EXPECT_NE(post.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(log::level(), log::Level::kInfo);
  log::set_level(before);

  EXPECT_NE(get(server.port(), "/missing").find("HTTP/1.1 404"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(AdminServerTest, SequentialRequestsAndRestartFreesPort) {
  obs::Registry reg;
  AdminOptions opts;
  opts.port = 0;
  {
    AdminServer server(opts, reg);
    server.start();
    for (int k = 0; k < 5; ++k) {
      EXPECT_NE(get(server.port(), "/healthz").find("200 OK"),
                std::string::npos);
    }
  }  // destructor stops and releases the port
  AdminServer second(opts, reg);
  second.start();
  EXPECT_NE(get(second.port(), "/healthz").find("200 OK"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live JobView snapshots from the scheduler.

TEST(JobSnapshotTest, SchedulerReportsQueuedAndRunningJobs) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  SchedulerOptions so;
  so.max_concurrent = 1;  // job 2 must stay queued while job 1 runs
  JobScheduler sched(pool, so,
                     [&](const JobSpec&, JobId, const CancellationToken&) {
                       std::unique_lock<std::mutex> lock(mu);
                       cv.wait(lock, [&] { return release; });
                       return JobResult{};
                     });

  JobSpec first;
  first.name = "blocker";
  first.algo = ServiceAlgo::kBfs;
  first.priority = 2;
  JobTicket t1 = sched.submit(first, 1000);
  ASSERT_TRUE(t1.accepted);
  JobSpec second;
  second.name = "waiter";
  second.algo = ServiceAlgo::kPageRank;
  JobTicket t2 = sched.submit(second, 2000);
  ASSERT_TRUE(t2.accepted);

  // Wait until the dispatcher has actually started job 1.
  while (sched.running_jobs() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<JobView> jobs = sched.snapshot_jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, t1.id);
  EXPECT_EQ(jobs[0].status, JobStatus::kRunning);
  EXPECT_EQ(jobs[0].name, "blocker");
  EXPECT_EQ(jobs[0].algo, "bfs");
  EXPECT_EQ(jobs[0].priority, 2);
  EXPECT_EQ(jobs[0].estimate_bytes, 1000u);
  EXPECT_GE(jobs[0].wall_seconds, 0.0);
  EXPECT_EQ(jobs[1].id, t2.id);
  EXPECT_EQ(jobs[1].status, JobStatus::kQueued);
  EXPECT_EQ(jobs[1].estimate_bytes, 2000u);

  // The JSON body carries both jobs.
  std::string json = jobs_view_json(jobs);
  EXPECT_NE(json.find("\"name\": \"blocker\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"queued\""), std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  sched.wait_idle();
  EXPECT_TRUE(sched.snapshot_jobs().empty());
}

}  // namespace
}  // namespace husg
