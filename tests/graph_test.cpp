#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/reference.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using testing::ScratchDir;

// --- EdgeList -------------------------------------------------------------------

TEST(EdgeList, DegreesAndTranspose) {
  EdgeList g(4, {{0, 1}, {0, 2}, {1, 2}, {3, 0}});
  auto od = g.out_degrees();
  auto id = g.in_degrees();
  EXPECT_EQ(od, (std::vector<VertexId>{2, 1, 0, 1}));
  EXPECT_EQ(id, (std::vector<VertexId>{1, 1, 2, 0}));
  EdgeList t = g.transposed();
  EXPECT_EQ(t.out_degrees(), id);
  EXPECT_EQ(t.in_degrees(), od);
}

TEST(EdgeList, OutOfRangeEdgeThrows) {
  EXPECT_THROW(EdgeList(3, {{0, 3}}), DataError);
  EXPECT_THROW(EdgeList(3, {{7, 0}}), DataError);
}

TEST(EdgeList, SymmetrizeDoublesNonLoops) {
  EdgeList g(3, {{0, 1}, {2, 2}});
  EdgeList s = g.symmetrized();
  EXPECT_EQ(s.num_edges(), 3u);  // (0,1),(1,0),(2,2)
}

TEST(EdgeList, SortAndDedupe) {
  EdgeList g(3, {{2, 1}, {0, 1}, {0, 1}, {1, 0}});
  g.sort_and_maybe_dedupe(true);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{1, 0}));
  EXPECT_EQ(g.edge(2), (Edge{2, 1}));
}

TEST(EdgeList, WeightsFollowSort) {
  EdgeList g(3, {{2, 1}, {0, 1}}, {5.0f, 7.0f});
  g.sort_and_maybe_dedupe(false);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_FLOAT_EQ(g.weight(0), 7.0f);
  EXPECT_FLOAT_EQ(g.weight(1), 5.0f);
}

TEST(EdgeList, AddEdgeUpgradesToWeighted) {
  EdgeList g(3, {{0, 1}});
  EXPECT_FALSE(g.weighted());
  g.add_edge(1, 2, 3.5f);
  EXPECT_TRUE(g.weighted());
  EXPECT_FLOAT_EQ(g.weight(0), 1.0f);
  EXPECT_FLOAT_EQ(g.weight(1), 3.5f);
}

// --- Generators ------------------------------------------------------------------

TEST(Generators, RmatDeterministicAndSized) {
  EdgeList a = gen::rmat(10, 8.0, 42);
  EdgeList b = gen::rmat(10, 8.0, 42);
  EXPECT_EQ(a.num_vertices(), 1024u);
  EXPECT_EQ(a.num_edges(), 8192u);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
  EdgeList c = gen::rmat(10, 8.0, 43);
  bool differs = false;
  for (EdgeId i = 0; i < a.num_edges() && !differs; ++i) {
    differs = !(a.edge(i) == c.edge(i));
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, RmatIsSkewed) {
  EdgeList g = gen::rmat(12, 16.0, 1);
  auto deg = g.out_degrees();
  auto max_deg = *std::max_element(deg.begin(), deg.end());
  double avg = static_cast<double>(g.num_edges()) / g.num_vertices();
  // Power-law-ish: hub degree far above the average.
  EXPECT_GT(max_deg, 20 * avg);
}

TEST(Generators, ErdosRenyiUniformish) {
  EdgeList g = gen::erdos_renyi(1000, 8000, 3);
  EXPECT_EQ(g.num_edges(), 8000u);
  auto deg = g.out_degrees();
  auto max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(max_deg, 40u);  // mean 8, Poisson tail
}

TEST(Generators, ChainStarGrid) {
  EdgeList c = gen::chain(5);
  EXPECT_EQ(c.num_edges(), 4u);
  EdgeList s = gen::star(5);
  EXPECT_EQ(s.num_edges(), 4u);
  EXPECT_EQ(s.out_degrees()[0], 4u);
  EdgeList g = gen::grid2d(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3*3 horizontal + 2*4 vertical = 17 undirected -> 34 directed.
  EXPECT_EQ(g.num_edges(), 34u);
}

TEST(Generators, WebgraphHasLargerDiameterThanRmat) {
  EdgeList social = gen::rmat(10, 8.0, 5);
  EdgeList web = gen::webgraph(10, 8.0, 5);
  auto social_prof = ref::bfs_activity(social.symmetrized(), 0);
  auto web_prof = ref::bfs_activity(web.symmetrized(), 0);
  EXPECT_GT(web_prof.active_edges_per_iter.size(),
            social_prof.active_edges_per_iter.size());
}

TEST(Generators, RandomWeightsInRange) {
  EdgeList g = gen::with_random_weights(gen::chain(100), 9, 0.5f, 2.0f);
  ASSERT_TRUE(g.weighted());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_GE(g.weight(i), 0.5f);
    EXPECT_LT(g.weight(i), 2.0f);
  }
}

// --- Graph I/O ---------------------------------------------------------------------

TEST(GraphIo, TextRoundTrip) {
  ScratchDir dir("gio");
  EdgeList g = gen::erdos_renyi(50, 200, 1);
  save_text_edges(g, dir / "g.txt");
  EdgeList back = load_text_edges(dir / "g.txt", g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) EXPECT_EQ(back.edge(i), g.edge(i));
}

TEST(GraphIo, TextWeightedRoundTrip) {
  ScratchDir dir("gio2");
  EdgeList g = gen::with_random_weights(gen::chain(20), 2);
  save_text_edges(g, dir / "g.txt");
  EdgeList back = load_text_edges(dir / "g.txt");
  ASSERT_TRUE(back.weighted());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_NEAR(back.weight(i), g.weight(i), 1e-5);
  }
}

TEST(GraphIo, TextCommentsAndErrors) {
  ScratchDir dir("gio3");
  {
    std::ofstream out(dir / "ok.txt");
    out << "# comment\n% comment\n1 2\n3 4\n";
  }
  EdgeList g = load_text_edges(dir / "ok.txt");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_vertices(), 5u);
  {
    std::ofstream out(dir / "bad.txt");
    out << "1 two\n";
  }
  EXPECT_THROW(load_text_edges(dir / "bad.txt"), DataError);
}

TEST(GraphIo, BinaryRoundTripAndCorruption) {
  ScratchDir dir("gio4");
  EdgeList g = gen::with_random_weights(gen::erdos_renyi(40, 150, 4), 4);
  save_binary_edges(g, dir / "g.bin");
  EdgeList back = load_binary_edges(dir / "g.bin");
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edge(i), g.edge(i));
    EXPECT_FLOAT_EQ(back.weight(i), g.weight(i));
  }
  // Truncate -> DataError.
  std::filesystem::resize_file(dir / "g.bin",
                               std::filesystem::file_size(dir / "g.bin") - 8);
  EXPECT_THROW(load_binary_edges(dir / "g.bin"), DataError);
  // Bad magic.
  {
    File f(dir / "bad.bin", File::Mode::kWrite);
    std::uint64_t junk[4] = {0xdead, 1, 0, 0};
    f.pwrite_exact(junk, sizeof(junk), 0);
  }
  EXPECT_THROW(load_binary_edges(dir / "bad.bin"), DataError);
}

// --- Reference algorithms -------------------------------------------------------------

TEST(Reference, BfsOnChain) {
  auto lv = ref::bfs_levels(gen::chain(6), 0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(lv[v], v);
  auto lv2 = ref::bfs_levels(gen::chain(6), 3);
  EXPECT_EQ(lv2[2], ref::kUnreachedLevel);
  EXPECT_EQ(lv2[5], 2u);
}

TEST(Reference, WccTwoComponents) {
  EdgeList g(6, {{0, 1}, {1, 2}, {4, 5}});
  auto labels = ref::wcc_labels(g);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[5], 4u);
}

TEST(Reference, SsspTriangleShortcut) {
  EdgeList g(3, {{0, 1}, {1, 2}, {0, 2}}, {1.0f, 1.0f, 5.0f});
  auto d = ref::sssp_distances(g, 0);
  EXPECT_FLOAT_EQ(d[2], 2.0f);  // through 1, not the direct 5.0 edge
}

TEST(Reference, PageRankStarMass) {
  // Star: hub 0 -> {1..4}; leaves have outdeg 0.
  auto pr = ref::pagerank(gen::star(5), 50);
  // Hub receives nothing: pr = 0.15.
  EXPECT_NEAR(pr[0], 0.15, 1e-9);
  // Leaves: 0.15 + 0.85 * pr(hub)/4.
  EXPECT_NEAR(pr[1], 0.15 + 0.85 * 0.15 / 4, 1e-9);
}

TEST(Reference, PageRankSumBounded) {
  EdgeList g = gen::rmat(8, 8.0, 2);
  auto pr = ref::pagerank(g, 20);
  double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  // Without dangling redistribution the sum leaks below |V| but stays
  // within (0.15|V|, |V|].
  EXPECT_GT(sum, 0.15 * g.num_vertices());
  EXPECT_LE(sum, 1.0 * g.num_vertices() + 1e-6);
}

TEST(Reference, BfsActivityProfileShape) {
  EdgeList g = gen::rmat(10, 8.0, 6).symmetrized();
  auto prof = ref::bfs_activity(g, 0);
  ASSERT_GE(prof.active_edges_per_iter.size(), 3u);
  EXPECT_EQ(prof.active_vertices_per_iter[0], 1u);
  // Frontier grows then shrinks: peak is interior.
  auto peak = std::max_element(prof.active_edges_per_iter.begin(),
                               prof.active_edges_per_iter.end());
  EXPECT_NE(peak, prof.active_edges_per_iter.begin());
  EXPECT_NE(peak, prof.active_edges_per_iter.end() - 1);
}

TEST(Reference, WccActivityStartsDense) {
  EdgeList g = gen::erdos_renyi(500, 2000, 8);
  auto prof = ref::wcc_activity(g);
  ASSERT_FALSE(prof.active_vertices_per_iter.empty());
  EXPECT_EQ(prof.active_vertices_per_iter[0], 500u);
  if (prof.active_vertices_per_iter.size() > 2) {
    EXPECT_LT(prof.active_vertices_per_iter.back(),
              prof.active_vertices_per_iter[0]);
  }
}

TEST(Reference, PagerankActivityAllActive) {
  EdgeList g = gen::chain(10);
  auto prof = ref::pagerank_activity(g, 5);
  ASSERT_EQ(prof.active_edges_per_iter.size(), 5u);
  for (auto e : prof.active_edges_per_iter) EXPECT_EQ(e, g.num_edges());
}

}  // namespace
}  // namespace husg
