// Tests for the self-tuning runtime (DESIGN.md §13): online device
// calibration (obs/calibrate.hpp), shadow miss-ratio curves
// (cache/shadow_mrc.hpp), per-owner cache quotas (cache/block_cache.hpp) and
// the MRC-driven partition manager + scheduler tick that tie them together.
//
// The shadow-vs-offline agreement tests are tolerance-gated on purpose: the
// shadow stack is LRU with spatial sampling while the offline replay drives
// the real CLOCK cache with admission control, so the curves agree in shape
// and scale, not sample-for-sample.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "husg/husg.hpp"
#include "obs/calibrate.hpp"
#include "obs/iotrace.hpp"
#include "obs/iotrace_replay.hpp"
#include "service/cache_partition.hpp"
#include "test_util.hpp"

namespace husg {
namespace {

using obs::CalibrationMode;
using obs::DeviceCalibrator;
using testing::ScratchDir;

// --- online device calibration -------------------------------------------

TEST(CalibrationTest, ModeParsing) {
  CalibrationMode mode = CalibrationMode::kApply;
  EXPECT_TRUE(obs::parse_calibration_mode("off", mode));
  EXPECT_EQ(mode, CalibrationMode::kOff);
  EXPECT_TRUE(obs::parse_calibration_mode("observe", mode));
  EXPECT_EQ(mode, CalibrationMode::kObserve);
  EXPECT_TRUE(obs::parse_calibration_mode("apply", mode));
  EXPECT_EQ(mode, CalibrationMode::kApply);
  EXPECT_FALSE(obs::parse_calibration_mode("on", mode));
  EXPECT_FALSE(obs::parse_calibration_mode("", mode));
}

TEST(CalibrationTest, ColdCalibratorReturnsPresetUnchanged) {
  DeviceCalibrator cal;
  const DeviceProfile preset = DeviceProfile::sata_ssd();
  EXPECT_FALSE(cal.warm());
  const DeviceProfile out = cal.calibrated(preset);
  EXPECT_DOUBLE_EQ(out.seq_read_bw, preset.seq_read_bw);
  EXPECT_DOUBLE_EQ(out.rand_read_bw, preset.rand_read_bw);
  EXPECT_DOUBLE_EQ(out.write_bw, preset.write_bw);
  EXPECT_DOUBLE_EQ(out.seek_seconds, preset.seek_seconds);
}

TEST(CalibrationTest, EwmaConvergesToSyntheticDevice) {
  DeviceCalibrator::Options o;
  o.min_samples = 16;
  o.ewma_alpha = 0.2;
  DeviceCalibrator cal(o);
  // Synthetic device: 100 MB/s streaming, 1 ms positioning per random op.
  const double bw = 100e6;
  const double seek = 1e-3;
  const std::uint64_t seq_bytes = 1 << 20;
  const std::uint64_t rand_bytes = 4096;
  for (int k = 0; k < 200; ++k) {
    cal.record_sequential(
        seq_bytes,
        static_cast<std::uint64_t>(1e9 * static_cast<double>(seq_bytes) / bw));
    cal.record_random(
        1, rand_bytes,
        static_cast<std::uint64_t>(
            1e9 * (seek + static_cast<double>(rand_bytes) / bw)));
  }
  EXPECT_TRUE(cal.warm());
  const DeviceProfile out = cal.calibrated(DeviceProfile::hdd7200());
  EXPECT_NEAR(out.seq_read_bw, bw, 0.05 * bw);
  EXPECT_NEAR(out.rand_read_bw, bw, 0.05 * bw);
  EXPECT_NEAR(out.seek_seconds, seek, 0.05 * seek);
}

TEST(CalibrationTest, OutlierClampDropsSpikes) {
  DeviceCalibrator::Options o;
  o.min_samples = 16;
  o.outlier_factor = 32.0;
  DeviceCalibrator cal(o);
  for (int k = 0; k < 64; ++k) {
    cal.record_random(1, 4096, 1'000'000);  // steady 1 ms ops
  }
  const double before = cal.snapshot().rand_latency_seconds;
  cal.record_random(1, 4096, 1'000'000'000);  // one 1 s scheduling hiccup
  const obs::CalibrationSnapshot s = cal.snapshot();
  EXPECT_EQ(s.outliers, 1u);
  EXPECT_DOUBLE_EQ(s.rand_latency_seconds, before);
}

TEST(CalibrationTest, WarmRequiresBothClassesPastFloor) {
  DeviceCalibrator::Options o;
  o.min_samples = 8;
  DeviceCalibrator cal(o);
  for (int k = 0; k < 16; ++k) cal.record_random(1, 4096, 1'000'000);
  EXPECT_FALSE(cal.warm());  // sequential class still cold
  for (int k = 0; k < 16; ++k) cal.record_sequential(1 << 20, 10'000'000);
  EXPECT_TRUE(cal.warm());
}

TEST(CalibrationTest, WallAuditPrefersTruthfulProfile) {
  // One recorded decision whose observed wall time is exactly what profile
  // `truth` predicts: from_run_wall must score ~0 error under `truth` and a
  // large error under a profile with 100x the positioning cost.
  const DeviceProfile truth = DeviceProfile::sata_ssd();
  DeviceProfile wrong = truth;
  wrong.seek_seconds = truth.seek_seconds * 100;
  wrong.seq_read_bw = truth.seq_read_bw / 50;

  PredictionInputs in;
  in.active_vertices = 100;
  in.active_degree_sum = 1600;
  in.num_vertices = 1000;
  in.num_edges = 8000;
  in.p = 4;
  in.column_edge_bytes = 16000;
  const IoCostPredictor pred(truth, PredictorFlavor::kDeviceExact, 0.05);

  RunStats stats;
  IterationStats it;
  DecisionRecord d;
  d.inputs = in;
  d.prediction = pred.predict(in, /*use_alpha=*/false);
  d.used_rop = true;
  d.observed = true;
  d.observed_wall_seconds = d.prediction.c_rop;
  it.decisions.push_back(d);
  stats.iterations.push_back(it);

  const double err_truth =
      obs::PredictorAudit::from_run_wall(stats, truth,
                                         PredictorFlavor::kDeviceExact, 0.05)
          .summarize()
          .mean_rel_error;
  const double err_wrong =
      obs::PredictorAudit::from_run_wall(stats, wrong,
                                         PredictorFlavor::kDeviceExact, 0.05)
          .summarize()
          .mean_rel_error;
  EXPECT_LT(err_truth, 1e-9);
  EXPECT_GT(err_wrong, 0.5);
  EXPECT_LT(err_truth, err_wrong);
}

// --- shadow miss-ratio curves --------------------------------------------

BlockKey key_of(std::uint32_t n) {
  return BlockKey{BlockKind::kOutAdj, n, 0};
}

/// `rounds` cyclic sweeps over `blocks` same-sized blocks.
void sweep(ShadowMrc& mrc, std::uint32_t blocks, int rounds,
           std::uint64_t bytes) {
  for (int r = 0; r < rounds; ++r) {
    for (std::uint32_t b = 0; b < blocks; ++b) {
      mrc.record(key_of(b), bytes, bytes);
    }
  }
}

TEST(ShadowMrcTest, ExactDistancesAtFullSampling) {
  ShadowMrc::Options o;
  o.sample_rate = 1.0;
  ShadowMrc mrc(o);
  // 8 blocks x 100 B, 5 rounds: 8 cold accesses + 32 reuses, every reuse at
  // byte distance 700 (the 7 other blocks touched in between).
  sweep(mrc, 8, 5, 100);
  EXPECT_EQ(mrc.accesses(), 40u);
  EXPECT_EQ(mrc.sampled(), 40u);
  // A budget far above the working set leaves only the compulsory misses...
  EXPECT_NEAR(mrc.miss_ratio(1 << 20), 8.0 / 40.0, 1e-9);
  // ...and a budget far below it misses everything.
  EXPECT_NEAR(mrc.miss_ratio(64), 1.0, 1e-9);
  ShadowMrc::Curve curve = mrc.curve();
  ASSERT_FALSE(curve.points.empty());
  EXPECT_NEAR(static_cast<double>(curve.unique_payload_bytes), 800.0, 1.0);
  for (std::size_t k = 1; k < curve.points.size(); ++k) {
    EXPECT_LE(curve.points[k].miss_ratio, curve.points[k - 1].miss_ratio + 1e-9)
        << "shadow LRU curve must be monotone in budget";
  }
}

TEST(ShadowMrcTest, PredictedMissBytesScalesWithSavedBytes) {
  ShadowMrc::Options o;
  o.sample_rate = 1.0;
  ShadowMrc mrc(o);
  sweep(mrc, 8, 5, 100);  // Σ saved = 4000
  EXPECT_NEAR(mrc.predicted_miss_bytes(1 << 20), (8.0 / 40.0) * 4000.0, 1e-6);
  EXPECT_NEAR(mrc.predicted_miss_bytes(64), 4000.0, 1e-6);
}

TEST(ShadowMrcTest, SamplingRateSweepStaysWithinBound) {
  // The same deterministic skewed stream at 1.0 / 0.25 / 1/16 sampling:
  // sampled estimates must track the exact curve within a coarse bound.
  const double rates[] = {1.0, 0.25, 1.0 / 16.0};
  const std::uint64_t bytes = 512;
  const std::uint32_t keys = 512;
  std::vector<std::unique_ptr<ShadowMrc>> trackers;
  for (double rate : rates) {
    ShadowMrc::Options o;
    o.sample_rate = rate;
    trackers.push_back(std::make_unique<ShadowMrc>(o));
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // deterministic LCG
  for (int k = 0; k < 200000; ++k) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Skew: half the accesses hit the 32 hottest keys.
    const std::uint32_t r = static_cast<std::uint32_t>(state >> 33);
    const std::uint32_t id =
        (r & 1) ? (r >> 1) % 32 : 32 + (r >> 1) % (keys - 32);
    for (auto& t : trackers) t->record(key_of(id), bytes, bytes);
  }
  const std::uint64_t budgets[] = {8 * bytes, 32 * bytes, 128 * bytes,
                                   static_cast<std::uint64_t>(keys) * bytes};
  for (std::size_t t = 1; t < trackers.size(); ++t) {
    double dev = 0;
    for (std::uint64_t b : budgets) {
      dev += std::abs(trackers[t]->miss_ratio(b) - trackers[0]->miss_ratio(b));
    }
    dev /= static_cast<double>(std::size(budgets));
    EXPECT_LE(dev, 0.15) << "sample rate " << rates[t]
                         << " drifted from the exact curve";
  }
}

/// Hybrid PageRank over a cached engine with the iotrace armed and a shadow
/// tracker attached to the same reader.
struct ShadowedRun {
  obs::TraceFile trace;
  RunStats stats;
};

ShadowedRun shadowed_run(const DualBlockStore& store, const std::string& path,
                         ShadowMrc& shadow, std::uint64_t budget) {
  EngineOptions o;
  o.threads = 1;  // deterministic access order, same as the replay-fidelity CI
  o.file_backed_values = false;
  o.max_iterations = 3;
  o.cache_budget_bytes = budget;
  o.cache_fill_rop = true;
  o.shadow_mrc = &shadow;
  obs::TraceRunInfo info;
  info.p = store.meta().p();
  info.budget_bytes = o.cache_budget_bytes;
  info.max_block_fraction = o.cache_max_block_fraction;
  info.fill_rop = o.cache_fill_rop;
  info.num_vertices = store.meta().num_vertices;
  info.num_edges = store.meta().num_edges;
  obs::IoTrace::instance().start(path, info);
  Engine e(store, o);
  PageRankProgram p;
  RunStats stats =
      e.run(p, Frontier::all(store.meta(), store.out_degrees())).stats;
  obs::IoTrace::instance().stop();
  return ShadowedRun{obs::load_trace(path), stats};
}

TEST(ShadowMrcTest, LiveCurveTracksOfflineReplayCurve) {
  ScratchDir scratch("shadow_vs_replay");
  EdgeList graph = gen::rmat(/*scale=*/9, /*avg_degree=*/8.0, /*seed=*/7);
  DualBlockStore::build(graph, scratch / "store", StoreOptions{4});
  DualBlockStore store = DualBlockStore::open(scratch / "store");
  std::uint64_t adj = 0;
  for (std::uint32_t i = 0; i < store.meta().p(); ++i) {
    for (std::uint32_t j = 0; j < store.meta().p(); ++j) {
      adj += store.meta().out_block(i, j).adj_bytes +
             store.meta().in_block(i, j).adj_bytes;
    }
  }
  ShadowMrc::Options so;
  so.sample_rate = 1.0;  // exact distances; sampling error is tested above
  ShadowMrc shadow(so);
  ShadowedRun run =
      shadowed_run(store, (scratch / "trace.bin").string(), shadow, adj / 2);
  ASSERT_GT(shadow.accesses(), 0u);
  ASSERT_TRUE(shadow.warm());

  obs::MissRatioCurve offline = obs::miss_ratio_curve(run.trace, 12);
  ASSERT_FALSE(offline.points.empty());
  double dev = 0;
  for (const obs::MissRatioPoint& pt : offline.points) {
    dev += std::abs(shadow.miss_ratio(pt.budget_bytes) -
                    pt.counters.miss_ratio());
  }
  dev /= static_cast<double>(offline.points.size());
  // LRU stack vs the real CLOCK+admission cache: shapes agree, samples
  // differ. The gate catches gross divergence (a broken distance measure
  // sits at ~0.5+ here), not modeling noise.
  EXPECT_LE(dev, 0.15) << "live shadow curve diverged from husg_replay "
                          "--curve on the same trace";
  // The working-set estimates must land in the same ballpark too.
  const double ws_ratio =
      static_cast<double>(shadow.curve().unique_payload_bytes) /
      static_cast<double>(offline.unique_payload_bytes);
  EXPECT_GT(ws_ratio, 0.5);
  EXPECT_LT(ws_ratio, 2.0);
}

// --- per-owner cache quotas ----------------------------------------------

std::vector<char> payload(std::size_t size, char fill) {
  return std::vector<char>(size, fill);
}

TEST(BlockCachePartitionTest, QuotaEvictsOwnersOwnColdestFirst) {
  BlockCache cache({/*budget_bytes=*/1000, /*max_block_fraction=*/1.0});
  cache.set_partition({{1, 300}, {2, 300}});
  EXPECT_TRUE(cache.partitioned());
  EXPECT_EQ(cache.owner_quota(1), 300u);
  for (std::uint32_t k = 0; k < 5; ++k) {
    cache.insert(BlockKey{BlockKind::kOutAdj, k, 1}, payload(100, 'a'), 100,
                 /*owner=*/1);
  }
  // Owner 1 stays within its quota by evicting its own entries; the global
  // budget (1000) never forced any of this.
  EXPECT_LE(cache.owner_resident_bytes(1), 300u);
  EXPECT_GE(cache.owner_resident_bytes(1), 200u);
  EXPECT_EQ(cache.owner_resident_bytes(2), 0u);
  // The newest key is resident, the oldest was evicted.
  EXPECT_TRUE(cache.contains(BlockKey{BlockKind::kOutAdj, 4, 1}));
  EXPECT_FALSE(cache.contains(BlockKey{BlockKind::kOutAdj, 0, 1}));
}

TEST(BlockCachePartitionTest, TighterQuotaTrimsImmediately) {
  BlockCache cache({1000, 1.0});
  for (std::uint32_t k = 0; k < 5; ++k) {
    cache.insert(BlockKey{BlockKind::kOutAdj, k, 2}, payload(100, 'b'), 100,
                 /*owner=*/7);
  }
  EXPECT_EQ(cache.owner_resident_bytes(7), 500u);
  cache.set_partition({{7, 200}});
  EXPECT_LE(cache.owner_resident_bytes(7), 200u);
  // Clearing the partition restores the unpartitioned cache behaviour.
  cache.set_partition({});
  EXPECT_FALSE(cache.partitioned());
  EXPECT_EQ(cache.owner_quota(7), 0u);
  for (std::uint32_t k = 10; k < 15; ++k) {
    cache.insert(BlockKey{BlockKind::kOutAdj, k, 2}, payload(100, 'b'), 100,
                 /*owner=*/7);
  }
  EXPECT_GT(cache.owner_resident_bytes(7), 200u);
}

TEST(BlockCachePartitionTest, UnquotedOwnerOnlySeesGlobalBudget) {
  BlockCache cache({1000, 1.0});
  cache.set_partition({{1, 200}});
  for (std::uint32_t k = 0; k < 8; ++k) {
    cache.insert(BlockKey{BlockKind::kInAdj, k, 0}, payload(100, 'c'), 100,
                 /*owner=*/2);
  }
  EXPECT_EQ(cache.owner_resident_bytes(2), 800u);
}

// --- MRC-driven partition manager ----------------------------------------

CachePartitionManager::Options exact_manager_options() {
  CachePartitionManager::Options o;
  o.shadow.sample_rate = 1.0;
  return o;
}

TEST(CachePartitionManagerTest, SkewedJobsGetAnUnevenSplit) {
  BlockCache cache({/*budget_bytes=*/1000, /*max_block_fraction=*/1.0});
  CachePartitionManager mgr(cache, exact_manager_options());
  ShadowMrc* a = mgr.shadow_for(1);
  ShadowMrc* b = mgr.shadow_for(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(mgr.shadow_for(1), a) << "same owner must get the same tracker";
  // Job 1 cycles 7 blocks (600 B reuse distance), job 2 cycles 9 blocks
  // (800 B): a 500/500 even split satisfies neither, while ~700/300 gives
  // job 1 a fully-hitting cache. The climb must find and install that.
  sweep(*a, 7, 50, 100);
  for (int r = 0; r < 50; ++r) {
    for (std::uint32_t k = 0; k < 9; ++k) {
      b->record(BlockKey{BlockKind::kInAdj, k, 9}, 100, 100);
    }
  }
  ASSERT_TRUE(a->warm());
  ASSERT_TRUE(b->warm());
  mgr.repartition({1, 2});
  EXPECT_EQ(mgr.repartitions_applied(), 1u);
  EXPECT_TRUE(mgr.partitioned());
  EXPECT_TRUE(cache.partitioned());
  const std::uint64_t qa = cache.owner_quota(1);
  const std::uint64_t qb = cache.owner_quota(2);
  EXPECT_EQ(qa + qb, 1000u);
  EXPECT_GT(qa, qb) << "the job whose working set fits must get the bytes";
}

TEST(CachePartitionManagerTest, ColdTrackersNeverPartition) {
  BlockCache cache({1000, 1.0});
  CachePartitionManager mgr(cache, exact_manager_options());
  mgr.shadow_for(1);
  mgr.shadow_for(2);
  mgr.repartition({1, 2});
  EXPECT_EQ(mgr.repartitions_applied(), 0u);
  EXPECT_FALSE(cache.partitioned());
}

TEST(CachePartitionManagerTest, JobFinishRetiresTrackerAndSplit) {
  BlockCache cache({1000, 1.0});
  CachePartitionManager mgr(cache, exact_manager_options());
  sweep(*mgr.shadow_for(1), 7, 50, 100);
  for (int r = 0; r < 50; ++r) {
    for (std::uint32_t k = 0; k < 9; ++k) {
      mgr.shadow_for(2)->record(BlockKey{BlockKind::kInAdj, k, 9}, 100, 100);
    }
  }
  mgr.repartition({1, 2});
  ASSERT_TRUE(cache.partitioned());
  mgr.job_finished(1);
  // One job left: a single-owner partition is pointless, so it is dropped.
  EXPECT_FALSE(cache.partitioned());
  EXPECT_EQ(cache.owner_quota(2), 0u);
  mgr.job_finished(2);
  EXPECT_FALSE(cache.partitioned());
}

TEST(CachePartitionManagerTest, WriteJsonHasCurvesAndPartition) {
  BlockCache cache({1000, 1.0});
  CachePartitionManager mgr(cache, exact_manager_options());
  sweep(*mgr.shadow_for(3), 4, 20, 100);
  std::ostringstream os;
  mgr.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"budget_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"partition\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"curve\""), std::string::npos);
  EXPECT_NE(json.find("\"job\":3"), std::string::npos);
}

// TSan target (ci.yml builds this file with -fsanitize=thread): engine-side
// record() storms racing the scheduler tick's repartition/set_partition and
// the admin plane's write_json, all on one cache.
TEST(CachePartitionManagerTest, ConcurrentRecordRepartitionAndScrape) {
  BlockCache cache({/*budget_bytes=*/64 * 1024, /*max_block_fraction=*/1.0});
  CachePartitionManager mgr(cache, exact_manager_options());
  constexpr int kJobs = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (std::uint32_t job = 1; job <= kJobs; ++job) {
    workers.emplace_back([&, job] {
      ShadowMrc* shadow = mgr.shadow_for(job);
      for (int k = 0; k < 20000; ++k) {
        const std::uint32_t blk = static_cast<std::uint32_t>(k) % (8 + job);
        shadow->record(BlockKey{BlockKind::kOutAdj, blk, job}, 512, 512);
        cache.insert(BlockKey{BlockKind::kOutAdj, blk, job},
                     payload(512, 'x'), 512, job);
        cache.find(BlockKey{BlockKind::kOutAdj, blk, job}, job);
      }
    });
  }
  std::thread ticker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      mgr.repartition({1, 2, 3, 4});
      std::ostringstream os;
      mgr.write_json(os);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  ticker.join();
  for (std::uint32_t job = 1; job <= kJobs; ++job) mgr.job_finished(job);
  EXPECT_FALSE(cache.partitioned());
}

// --- scheduler re-partition tick -----------------------------------------

TEST(JobSchedulerTest, RepartitionTickFiresWhileJobsRun) {
  ThreadPool pool(3);
  std::atomic<int> ticks{0};
  std::atomic<std::size_t> seen_running{0};
  SchedulerOptions o;
  o.max_concurrent = 2;
  o.max_queue = 8;
  o.memory_budget_bytes = 1 << 20;
  o.repartition_interval_ms = 5;
  o.repartition = [&](const std::vector<JobId>& running) {
    ticks.fetch_add(1);
    seen_running.store(running.size());
  };
  JobScheduler sched(pool, o,
                     [&](const JobSpec&, JobId, const CancellationToken&) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(150));
                       JobResult res;
                       return res;
                     });
  JobSpec spec;
  spec.name = "tick";
  JobTicket t1 = sched.submit(spec, 100);
  JobTicket t2 = sched.submit(spec, 100);
  ASSERT_TRUE(t1.accepted);
  ASSERT_TRUE(t2.accepted);
  t1.result.get();
  t2.result.get();
  sched.wait_idle();
  EXPECT_GE(ticks.load(), 1) << "tick never fired during a 150 ms job";
  EXPECT_GE(seen_running.load(), 1u);
  const int after = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(ticks.load(), after) << "tick must stop when nothing runs";
}

}  // namespace
}  // namespace husg
