#!/bin/sh
# End-to-end test of the husg_cli pipeline: generate -> build -> info -> run,
# plus error handling. Invoked by ctest with the binary path as $1.
set -eu

CLI="$1"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/husg_cli_test.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# generate (binary and text)
"$CLI" generate --type rmat --scale 10 --degree 6 --seed 3 --out "$WORK/g.bin" \
  | grep -q '1024 vertices' || fail "generate rmat"
"$CLI" generate --type grid --scale 8 --weighted --out "$WORK/g.txt" \
  | grep -q 'weighted' || fail "generate weighted text"

# build + info
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store" --partitions 4 \
  | grep -q 'P=4' || fail "build"
"$CLI" info --store "$WORK/store" | grep -q 'partitions: 4' || fail "info"

# degree-balanced + symmetrized build
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store_deg" \
  --partitions 4 --scheme degree --symmetrize > /dev/null || fail "build degree"

# external-memory build + compressed in-blocks; results must match
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store_ext" \
  --external --compress > /dev/null || fail "build external+compress"
"$CLI" run --store "$WORK/store" --algo wcc --out "$WORK/wcc_a.txt" > /dev/null
"$CLI" run --store "$WORK/store_ext" --algo wcc --out "$WORK/wcc_b.txt" > /dev/null
cmp -s "$WORK/wcc_a.txt" "$WORK/wcc_b.txt" || fail "compressed store results differ"

# format validation: --block-codec / --skip-filter must match the store
"$CLI" info --store "$WORK/store_ext" | grep -q 'delta-varint' \
  || fail "info missing codec line"
"$CLI" run --store "$WORK/store_ext" --algo wcc --block-codec delta-varint \
  --skip-filter --out "$WORK/wcc_c.txt" > /dev/null || fail "run codec+skip"
cmp -s "$WORK/wcc_a.txt" "$WORK/wcc_c.txt" || fail "skip-filter results differ"
rc=0; "$CLI" run --store "$WORK/store" --algo wcc \
  --block-codec delta-varint 2>/dev/null || rc=$?
[ "$rc" = "3" ] || fail "codec mismatch not exit 3 (got $rc)"
rc=0; "$CLI" run --store "$WORK/store" --algo wcc \
  --block-codec zstd 2>/dev/null || rc=$?
[ "$rc" = "3" ] || fail "bad codec value not exit 3 (got $rc)"
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store_nosig" \
  --no-skip-filters > /dev/null || fail "build no-skip-filters"
rc=0; "$CLI" run --store "$WORK/store_nosig" --algo wcc \
  --skip-filter 2>/dev/null || rc=$?
[ "$rc" = "3" ] || fail "skip-filter without signatures not exit 3 (got $rc)"

# run every algorithm
"$CLI" run --store "$WORK/store" --algo bfs --source 1 --trace \
  | grep -q 'iterations' || fail "run bfs"
"$CLI" run --store "$WORK/store" --algo wcc --mode cop > /dev/null || fail "run wcc"
"$CLI" run --store "$WORK/store" --algo pagerank --iters 3 --out "$WORK/pr.txt" \
  | grep -q '3 iterations' || fail "run pagerank"
[ "$(wc -l < "$WORK/pr.txt")" = "1024" ] || fail "pagerank output size"
"$CLI" run --store "$WORK/store" --algo prdelta > /dev/null || fail "run prdelta"
"$CLI" run --store "$WORK/store_deg" --algo kcore --k 3 \
  | grep -q '3-core size' || fail "run kcore"
"$CLI" run --store "$WORK/store" --algo spmv --iters 2 > /dev/null || fail "run spmv"

# weighted store + sssp
"$CLI" generate --type er --scale 9 --degree 5 --weighted --out "$WORK/w.bin" > /dev/null
"$CLI" build --graph "$WORK/w.bin" --store "$WORK/wstore" > /dev/null
"$CLI" run --store "$WORK/wstore" --algo sssp --source 0 --device hdd \
  --seek-scale 0.001 > /dev/null || fail "run sssp"

# observability: trace + metrics + heatmap artifacts, log levels
"$CLI" run --store "$WORK/store" --algo bfs --source 1 \
  --trace-out "$WORK/trace.json" --metrics-out "$WORK/metrics.prom" \
  --heatmap-out "$WORK/heatmap.csv" --io-timing \
  > /dev/null || fail "run with telemetry flags"
[ -s "$WORK/trace.json" ] || fail "trace file missing"
[ -s "$WORK/metrics.prom" ] || fail "metrics file missing"
[ -s "$WORK/heatmap.csv" ] || fail "heatmap file missing"
grep -q '"traceEvents"' "$WORK/trace.json" || fail "trace not chrome format"
grep -q '^husg_run_iterations ' "$WORK/metrics.prom" || fail "run metrics missing"
grep -q '^husg_predictor_decisions_total ' "$WORK/metrics.prom" \
  || fail "predictor metrics missing"
grep -q '^husg_heatmap_blocks_touched ' "$WORK/metrics.prom" \
  || fail "heatmap summary gauges missing from metrics"
grep -q '^dir,row,col,reads,bytes,payload_bytes,hits,misses,evictions$' \
  "$WORK/heatmap.csv" || fail "heatmap CSV header missing"
grep -q '^in,' "$WORK/heatmap.csv" || fail "heatmap CSV has no in-block rows"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/trace.json" > /dev/null || fail "trace not JSON"
  python3 "$(dirname "$0")/../tools/check_prom.py" "$WORK/metrics.prom" \
    > /dev/null || fail "metrics not valid Prometheus exposition"
fi
# a .json heatmap suffix selects the JSON exporter
"$CLI" run --store "$WORK/store" --algo bfs --source 1 \
  --heatmap-out "$WORK/heatmap.json" > /dev/null || fail "run with json heatmap"
grep -q '"blocks"' "$WORK/heatmap.json" || fail "json heatmap missing blocks"
"$CLI" run --store "$WORK/store" --algo bfs --log-level info 2>&1 \
  | grep -q 'iter 0:' || fail "log-level info silent"
"$CLI" run --store "$WORK/store" --algo bfs --log-level quiet 2>&1 \
  | grep -q 'iter 0:' && fail "log-level quiet chatty"
"$CLI" run --store "$WORK/store" --algo bfs --log-level loud 2>/dev/null \
  && fail "bad log level accepted"

# checksum verification
"$CLI" verify --store "$WORK/store" | grep -q 'verified OK' || fail "verify clean"
printf 'X' | dd of="$WORK/store_ext/in.adj" bs=1 seek=5 conv=notrunc 2>/dev/null
"$CLI" verify --store "$WORK/store_ext" 2>/dev/null && fail "verify accepted corruption"

# error handling: unknown algo, missing store, corrupt store
"$CLI" run --store "$WORK/store" --algo nope 2>/dev/null && fail "unknown algo accepted"
"$CLI" run --store "$WORK/missing" --algo bfs 2>/dev/null && fail "missing store accepted"
"$CLI" generate --type nope --out "$WORK/x.bin" 2>/dev/null && fail "unknown type accepted"
truncate -s 10 "$WORK/store/out.adj"
"$CLI" run --store "$WORK/store" --algo bfs 2>/dev/null && fail "corrupt store accepted"

echo "cli_test OK"
