// Dataset registry + harness tests (small custom specs so the suite stays
// fast; the real registry entries are exercised by the bench binaries).
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_support/datasets.hpp"
#include "bench_support/harness.hpp"
#include "bench_support/report.hpp"
#include "graph/reference.hpp"
#include "test_util.hpp"

namespace husg::bench {
namespace {

using husg::testing::ScratchDir;

DatasetSpec tiny_spec(bool web = false) {
  DatasetSpec s;
  s.name = "tiny-test";
  s.paper_name = "Tiny";
  s.paper_size = "-";
  s.type = web ? "Web Graph" : "Social Graph";
  s.scale = 8;
  s.avg_degree = 6.0;
  s.web = web;
  s.seed = 77;
  return s;
}

/// Points the dataset cache at a scratch dir for the duration of a test.
class CacheGuard {
 public:
  explicit CacheGuard(const ScratchDir& dir) {
    ::setenv("HUSG_DATA_DIR", dir.path().c_str(), 1);
  }
  ~CacheGuard() { ::unsetenv("HUSG_DATA_DIR"); }
};

TEST(Registry, AllFivePaperGraphsPresent) {
  const auto& specs = all_datasets();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].paper_name, "LiveJournal");
  EXPECT_EQ(specs[4].paper_name, "UKunion");
  EXPECT_NO_THROW(dataset("sk-sim"));
  EXPECT_THROW(dataset("nope"), DataError);
}

TEST(DatasetTest, VariantsAreConsistent) {
  ScratchDir scratch("ds1");
  CacheGuard guard(scratch);
  Dataset ds(tiny_spec(), /*p=*/4);
  const EdgeList& dir = ds.graph(GraphVariant::kDirected);
  const EdgeList& sym = ds.graph(GraphVariant::kSymmetrized);
  const EdgeList& wgt = ds.graph(GraphVariant::kWeighted);
  EXPECT_EQ(dir.num_vertices(), 256u);
  EXPECT_GE(sym.num_edges(), dir.num_edges());
  EXPECT_EQ(wgt.num_edges(), dir.num_edges());
  EXPECT_TRUE(wgt.weighted());
  EXPECT_FALSE(dir.weighted());
  // Deterministic: a second handle builds identical graphs.
  Dataset ds2(tiny_spec(), 4);
  EXPECT_EQ(ds2.graph(GraphVariant::kDirected).num_edges(), dir.num_edges());
}

TEST(DatasetTest, TraversalSourceIsLowDegree) {
  ScratchDir scratch("ds2");
  CacheGuard guard(scratch);
  Dataset ds(tiny_spec(), 4);
  VertexId src = ds.traversal_source();
  VertexId deg = ds.graph(GraphVariant::kDirected).out_degrees()[src];
  EXPECT_GE(deg, 1u);
  EXPECT_LE(deg, 8u);
}

TEST(DatasetTest, StoresAreCachedOnDisk) {
  ScratchDir scratch("ds3");
  CacheGuard guard(scratch);
  {
    Dataset ds(tiny_spec(), 4);
    ds.hus_store(GraphVariant::kDirected);
    ds.grid_store(GraphVariant::kDirected);
  }
  // Cache directory exists and a fresh handle opens it rather than failing.
  Dataset ds2(tiny_spec(), 4);
  const auto& store = ds2.hus_store(GraphVariant::kDirected);
  EXPECT_EQ(store.meta().num_vertices, 256u);
  // Corrupt cache is rebuilt, not fatal.
  std::filesystem::path husdir = store.dir();
  {
    Dataset ds3(tiny_spec(), 4);
    std::filesystem::resize_file(husdir / "out.adj", 1);
    EXPECT_NO_THROW(ds3.hus_store(GraphVariant::kDirected));
    EXPECT_EQ(ds3.hus_store(GraphVariant::kDirected).meta().num_vertices,
              256u);
  }
}

TEST(Harness, AllSystemsProduceBfsOutcome) {
  ScratchDir scratch("ds4");
  CacheGuard guard(scratch);
  Dataset ds(tiny_spec(), 4);
  for (SystemKind system :
       {SystemKind::kHusHybrid, SystemKind::kHusRop, SystemKind::kHusCop,
        SystemKind::kGraphChi, SystemKind::kGridGraph, SystemKind::kXStream}) {
    RunConfig cfg;
    cfg.system = system;
    cfg.algo = AlgoKind::kBfs;
    cfg.threads = 2;
    RunOutcome r = run_system(ds, cfg);
    EXPECT_GT(r.stats.iterations_run(), 0) << to_string(system);
    EXPECT_GT(r.io_gb, 0.0) << to_string(system);
    EXPECT_GT(r.modeled_seconds, 0.0) << to_string(system);
  }
}

TEST(Harness, PageRankIterationCountHonored) {
  ScratchDir scratch("ds5");
  CacheGuard guard(scratch);
  Dataset ds(tiny_spec(), 4);
  RunConfig cfg;
  cfg.algo = AlgoKind::kPageRank;
  cfg.pagerank_iterations = 3;
  RunOutcome r = run_system(ds, cfg);
  EXPECT_EQ(r.stats.iterations_run(), 3);
}

TEST(Harness, SsspUsesWeightedStore) {
  ScratchDir scratch("ds6");
  CacheGuard guard(scratch);
  Dataset ds(tiny_spec(), 4);
  RunConfig cfg;
  cfg.algo = AlgoKind::kSssp;
  RunOutcome r = run_system(ds, cfg);
  EXPECT_GT(r.stats.iterations_run(), 1);
  EXPECT_TRUE(ds.hus_store(GraphVariant::kWeighted).meta().weighted);
}

TEST(Harness, ScaledDevicePreservesBandwidthScalesSeek) {
  DeviceProfile raw = DeviceProfile::hdd7200();
  DeviceProfile scaled = bench_hdd();
  EXPECT_DOUBLE_EQ(scaled.seq_read_bw, raw.seq_read_bw);
  EXPECT_DOUBLE_EQ(scaled.write_bw, raw.write_bw);
  EXPECT_NEAR(scaled.seek_seconds, raw.seek_seconds / kDatasetScaleFactor,
              1e-12);
}

TEST(Report, TableRendersWithoutCrashing) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"longer", "x"});
  t.print();  // smoke: just must not crash / assert
  banner("title", "claim");
  print_series("s", {1.0, 2.5}, "unit");
  EXPECT_EQ(fmt(1.234, 1), "1.2");
  EXPECT_EQ(fmt_ratio(2.0), "2.0x");
}

}  // namespace
}  // namespace husg::bench
