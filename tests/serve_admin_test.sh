#!/bin/sh
# End-to-end test of the admin HTTP plane on a live `husg_cli serve` run:
# start serve with --admin-port 0 (ephemeral), scrape /healthz /readyz
# /jobs /heatmap /calibration /mrc /metrics while a job is in flight, flip
# the log level over POST /loglevel, and validate the /metrics output
# (including the husg_calibration_*/husg_mrc_* families) with check_prom.py.
# Invoked by ctest with the CLI binary as $1 and husg_replay as $2.
set -eu

CLI="$1"
REPLAY="$2"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/husg_serve_admin.XXXXXX")
SERVE_PID=""
trap 'test -n "$SERVE_PID" && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Plain-HTTP GET/POST helper: curl when available, python3 otherwise.
fetch() { # fetch METHOD PORT PATH [BODY]
  _method="$1"; _port="$2"; _path="$3"; _body="${4:-}"
  if command -v curl > /dev/null 2>&1; then
    if [ "$_method" = "POST" ]; then
      curl -fsS -X POST --data "$_body" "http://127.0.0.1:$_port$_path"
    else
      curl -fsS "http://127.0.0.1:$_port$_path"
    fi
  else
    python3 - "$_method" "$_port" "$_path" "$_body" <<'EOF'
import sys, urllib.request
method, port, path, body = sys.argv[1:5]
data = body.encode() if method == "POST" else None
req = urllib.request.Request(f"http://127.0.0.1:{port}{path}", data=data,
                             method=method)
sys.stdout.write(urllib.request.urlopen(req, timeout=5).read().decode())
EOF
  fi
}

# A store big enough that the first job runs for a second or two: the admin
# scrapes below must land while it is in flight.
"$CLI" generate --type rmat --scale 10 --degree 6 --seed 5 \
  --out "$WORK/g.bin" > /dev/null
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store" --partitions 4 \
  > /dev/null

cat > "$WORK/jobs.json" <<'EOF'
[
  {"name": "long-ranks", "algo": "pagerank", "iterations": 20000,
   "timeout_ms": 120000},
  {"name": "queued-bfs", "algo": "bfs", "source": 1, "priority": -1}
]
EOF

# --max-concurrent 1 keeps queued-bfs pending for the whole long-ranks run,
# so the /jobs scrape below is race-free.
"$CLI" serve --store "$WORK/store" --jobs "$WORK/jobs.json" \
  --max-concurrent 1 --admin-port 0 --io-timing \
  --calibrate observe --cache-partition \
  --heatmap-out "$WORK/heatmap.json" \
  --iotrace-out "$WORK/serve_trace.bin" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# The CLI prints (and flushes) the bound ephemeral port before submitting.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^admin server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$WORK/serve.log" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "serve exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "admin port never announced"

fetch GET "$PORT" /healthz | grep -q '^ok$' || fail "/healthz"
fetch GET "$PORT" /readyz | grep -q '^ready$' || fail "/readyz"

# /jobs must show the in-flight batch: long-ranks running, queued-bfs queued.
JOBS_OK=""
for _ in $(seq 1 50); do
  JOBS=$(fetch GET "$PORT" /jobs 2>/dev/null || true)
  if echo "$JOBS" | grep -q '"status": "running"' &&
     echo "$JOBS" | grep -q '"name": "queued-bfs"'; then
    JOBS_OK=1
    break
  fi
  sleep 0.05
done
[ -n "$JOBS_OK" ] || fail "/jobs never showed a running + queued job"
echo "$JOBS" | grep -q '"name": "long-ranks"' || fail "/jobs missing job name"

# Live /heatmap scrape mid-run: the armed profiler serves its current state.
fetch GET "$PORT" /heatmap > "$WORK/heatmap.live" || fail "GET /heatmap"
grep -q '"p": 4' "$WORK/heatmap.live" || fail "/heatmap not armed (p != 4)"
grep -q '"row_skew"' "$WORK/heatmap.live" || fail "/heatmap missing skew"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/heatmap.live" > /dev/null \
    || fail "/heatmap not valid JSON"
fi

# Live /calibration scrape: --calibrate observe arms the device calibrator,
# so the route must report the observe mode and its sample counters.
fetch GET "$PORT" /calibration > "$WORK/calibration.live" \
  || fail "GET /calibration"
grep -q '"mode":"observe"' "$WORK/calibration.live" \
  || fail "/calibration not in observe mode"
grep -q '"samples":{"random":' "$WORK/calibration.live" \
  || fail "/calibration missing sample counters"
grep -q '"calibrated"' "$WORK/calibration.live" \
  || fail "/calibration missing calibrated profile"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/calibration.live" > /dev/null \
    || fail "/calibration not valid JSON"
fi

# Live /mrc scrape: --cache-partition installs the hook; the running job's
# shadow tracker must be visible.
fetch GET "$PORT" /mrc > "$WORK/mrc.live" || fail "GET /mrc"
grep -q '"budget_bytes"' "$WORK/mrc.live" || fail "/mrc missing budget"
grep -q '"jobs"' "$WORK/mrc.live" || fail "/mrc missing jobs array"
grep -q '"job":' "$WORK/mrc.live" || fail "/mrc shows no tracked job"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/mrc.live" > /dev/null \
    || fail "/mrc not valid JSON"
fi

# Live /metrics scrape while the job runs: service gauges + valid exposition.
fetch GET "$PORT" /metrics > "$WORK/metrics.live"
grep -q '^husg_service_jobs_running 1$' "$WORK/metrics.live" \
  || fail "live metrics missing running-jobs gauge"
grep -q '^husg_service_jobs_pending 1$' "$WORK/metrics.live" \
  || fail "live metrics missing pending-jobs gauge"
grep -q '^husg_service_reserved_bytes' "$WORK/metrics.live" \
  || fail "live metrics missing reserved-bytes gauge"
grep -q '^husg_mrc_tracked_jobs' "$WORK/metrics.live" \
  || fail "live metrics missing shadow-MRC gauges"
if command -v python3 > /dev/null 2>&1; then
  python3 "$(dirname "$0")/../tools/check_prom.py" \
    --require-family husg_calibration --require-family husg_mrc \
    "$WORK/metrics.live" \
    > /dev/null || fail "live metrics not valid Prometheus exposition"
fi

# Runtime log-level adjustment round trip.
fetch POST "$PORT" /loglevel debug | grep -q 'debug' || fail "POST /loglevel"
fetch POST "$PORT" /loglevel warn > /dev/null || fail "restore log level"

# Let the batch finish; both jobs must complete and serve must exit 0.
wait "$SERVE_PID" || fail "serve exited nonzero"
SERVE_PID=""
grep -q 'long-ranks.*completed' "$WORK/serve.log" || fail "job 1 not completed"
grep -q 'queued-bfs.*completed' "$WORK/serve.log" || fail "job 2 not completed"

# --heatmap-out wrote the per-block profile, fed by the jobs' cached readers.
[ -s "$WORK/heatmap.json" ] || fail "heatmap file missing"
grep -q '"blocks"' "$WORK/heatmap.json" || fail "heatmap has no blocks array"
grep -q '"dir": "in"' "$WORK/heatmap.json" \
  || fail "heatmap recorded no in-block traffic"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/heatmap.json" > /dev/null \
    || fail "heatmap not valid JSON"
fi

# --iotrace-out recorded the jobs' block traffic; the trace must load and
# replay. No --check: service jobs run on pool workers, so replay fidelity is
# approximate for multi-threaded traces (see obs/iotrace.hpp).
[ -s "$WORK/serve_trace.bin" ] || fail "serve trace missing"
"$REPLAY" --trace "$WORK/serve_trace.bin" --quiet \
  > /dev/null || fail "serve trace failed to load/replay"

echo "serve_admin_test OK"
