#!/bin/sh
# End-to-end test of the admin HTTP plane on a live `husg_cli serve` run:
# start serve with --admin-port 0 (ephemeral), scrape /healthz /readyz
# /jobs /heatmap /calibration /mrc /metrics while a job is in flight, flip
# the log level over POST /loglevel, and validate the /metrics output
# (including the husg_calibration_*/husg_mrc_*/husg_anomaly_* families) with
# check_prom.py. A second serve run freezes a job's heartbeat via the
# HUSG_TEST_FREEZE_HEARTBEAT hook: the anomaly watchdog must flip /readyz to
# 503 naming the stalled job, write a postmortem bundle, and the bundle must
# pretty-print through `husg_cli inspect-bundle`.
# Invoked by ctest with the CLI binary as $1 and husg_replay as $2.
set -eu

CLI="$1"
REPLAY="$2"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/husg_serve_admin.XXXXXX")
SERVE_PID=""
trap 'test -n "$SERVE_PID" && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Plain-HTTP GET/POST helper: curl when available, python3 otherwise.
fetch() { # fetch METHOD PORT PATH [BODY]
  _method="$1"; _port="$2"; _path="$3"; _body="${4:-}"
  if command -v curl > /dev/null 2>&1; then
    if [ "$_method" = "POST" ]; then
      curl -fsS -X POST --data "$_body" "http://127.0.0.1:$_port$_path"
    else
      curl -fsS "http://127.0.0.1:$_port$_path"
    fi
  else
    python3 - "$_method" "$_port" "$_path" "$_body" <<'EOF'
import sys, urllib.request
method, port, path, body = sys.argv[1:5]
data = body.encode() if method == "POST" else None
req = urllib.request.Request(f"http://127.0.0.1:{port}{path}", data=data,
                             method=method)
sys.stdout.write(urllib.request.urlopen(req, timeout=5).read().decode())
EOF
  fi
}

# GET that tolerates non-2xx responses (degraded /readyz answers 503): writes
# the body to the file in $3 and prints the HTTP status code.
fetch_code() { # fetch_code PORT PATH OUTFILE
  _port="$1"; _path="$2"; _out="$3"
  if command -v curl > /dev/null 2>&1; then
    curl -sS -o "$_out" -w '%{http_code}' "http://127.0.0.1:$_port$_path"
  else
    python3 - "$_port" "$_path" "$_out" <<'EOF'
import sys, urllib.request, urllib.error
port, path, out = sys.argv[1:4]
try:
    resp = urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5)
    body, code = resp.read(), resp.getcode()
except urllib.error.HTTPError as e:
    body, code = e.read(), e.code
with open(out, "wb") as f:
    f.write(body)
sys.stdout.write(str(code))
EOF
  fi
}

# A store big enough that the first job runs for a second or two: the admin
# scrapes below must land while it is in flight.
"$CLI" generate --type rmat --scale 10 --degree 6 --seed 5 \
  --out "$WORK/g.bin" > /dev/null
"$CLI" build --graph "$WORK/g.bin" --store "$WORK/store" --partitions 4 \
  > /dev/null

cat > "$WORK/jobs.json" <<'EOF'
[
  {"name": "long-ranks", "algo": "pagerank", "iterations": 20000,
   "timeout_ms": 120000},
  {"name": "queued-bfs", "algo": "bfs", "source": 1, "priority": -1}
]
EOF

# --max-concurrent 1 keeps queued-bfs pending for the whole long-ranks run,
# so the /jobs scrape below is race-free.
"$CLI" serve --store "$WORK/store" --jobs "$WORK/jobs.json" \
  --max-concurrent 1 --admin-port 0 --io-timing --lock-profile \
  --calibrate observe --cache-partition \
  --heatmap-out "$WORK/heatmap.json" \
  --iotrace-out "$WORK/serve_trace.bin" \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# The CLI prints (and flushes) the bound ephemeral port before submitting.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^admin server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$WORK/serve.log" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "serve exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "admin port never announced"

fetch GET "$PORT" /healthz | grep -q '^ok$' || fail "/healthz"
fetch GET "$PORT" /readyz | grep -q '^ready$' || fail "/readyz"

# /jobs must show the in-flight batch: long-ranks running, queued-bfs queued.
JOBS_OK=""
for _ in $(seq 1 50); do
  JOBS=$(fetch GET "$PORT" /jobs 2>/dev/null || true)
  if echo "$JOBS" | grep -q '"status": "running"' &&
     echo "$JOBS" | grep -q '"name": "queued-bfs"'; then
    JOBS_OK=1
    break
  fi
  sleep 0.05
done
[ -n "$JOBS_OK" ] || fail "/jobs never showed a running + queued job"
echo "$JOBS" | grep -q '"name": "long-ranks"' || fail "/jobs missing job name"

# Live /heatmap scrape mid-run: the armed profiler serves its current state.
fetch GET "$PORT" /heatmap > "$WORK/heatmap.live" || fail "GET /heatmap"
grep -q '"p": 4' "$WORK/heatmap.live" || fail "/heatmap not armed (p != 4)"
grep -q '"row_skew"' "$WORK/heatmap.live" || fail "/heatmap missing skew"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/heatmap.live" > /dev/null \
    || fail "/heatmap not valid JSON"
fi

# Live /calibration scrape: --calibrate observe arms the device calibrator,
# so the route must report the observe mode and its sample counters.
fetch GET "$PORT" /calibration > "$WORK/calibration.live" \
  || fail "GET /calibration"
grep -q '"mode":"observe"' "$WORK/calibration.live" \
  || fail "/calibration not in observe mode"
grep -q '"samples":{"random":' "$WORK/calibration.live" \
  || fail "/calibration missing sample counters"
grep -q '"calibrated"' "$WORK/calibration.live" \
  || fail "/calibration missing calibrated profile"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/calibration.live" > /dev/null \
    || fail "/calibration not valid JSON"
fi

# Live /mrc scrape: --cache-partition installs the hook; the running job's
# shadow tracker must be visible.
fetch GET "$PORT" /mrc > "$WORK/mrc.live" || fail "GET /mrc"
grep -q '"budget_bytes"' "$WORK/mrc.live" || fail "/mrc missing budget"
grep -q '"jobs"' "$WORK/mrc.live" || fail "/mrc missing jobs array"
grep -q '"job":' "$WORK/mrc.live" || fail "/mrc shows no tracked job"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/mrc.live" > /dev/null \
    || fail "/mrc not valid JSON"
fi

# Live /cpu scrape: the per-job CPU/wait breakdown must list the running
# batch (serve always arms attribution, so the decomposition is live).
fetch GET "$PORT" /cpu > "$WORK/cpu.live" || fail "GET /cpu"
grep -q '"jobs"' "$WORK/cpu.live" || fail "/cpu missing jobs array"
grep -q '"cpu_seconds"' "$WORK/cpu.live" || fail "/cpu missing cpu_seconds"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/cpu.live" > /dev/null \
    || fail "/cpu not valid JSON"
fi

# Live /metrics scrape while the job runs: service gauges + valid exposition.
fetch GET "$PORT" /metrics > "$WORK/metrics.live"
grep -q '^husg_service_jobs_running 1$' "$WORK/metrics.live" \
  || fail "live metrics missing running-jobs gauge"
grep -q '^husg_service_jobs_pending 1$' "$WORK/metrics.live" \
  || fail "live metrics missing pending-jobs gauge"
grep -q '^husg_service_reserved_bytes' "$WORK/metrics.live" \
  || fail "live metrics missing reserved-bytes gauge"
grep -q '^husg_mrc_tracked_jobs' "$WORK/metrics.live" \
  || fail "live metrics missing shadow-MRC gauges"
if command -v python3 > /dev/null 2>&1; then
  python3 "$(dirname "$0")/../tools/check_prom.py" \
    --require-family husg_calibration --require-family husg_mrc \
    --require-family husg_anomaly --require-family husg_cpu \
    --require-family husg_lock \
    "$WORK/metrics.live" \
    > /dev/null || fail "live metrics not valid Prometheus exposition"
fi

# Runtime log-level adjustment round trip.
fetch POST "$PORT" /loglevel debug | grep -q 'debug' || fail "POST /loglevel"
fetch POST "$PORT" /loglevel warn > /dev/null || fail "restore log level"

# Let the batch finish; both jobs must complete and serve must exit 0.
wait "$SERVE_PID" || fail "serve exited nonzero"
SERVE_PID=""
grep -q 'long-ranks.*completed' "$WORK/serve.log" || fail "job 1 not completed"
grep -q 'queued-bfs.*completed' "$WORK/serve.log" || fail "job 2 not completed"

# --heatmap-out wrote the per-block profile, fed by the jobs' cached readers.
[ -s "$WORK/heatmap.json" ] || fail "heatmap file missing"
grep -q '"blocks"' "$WORK/heatmap.json" || fail "heatmap has no blocks array"
grep -q '"dir": "in"' "$WORK/heatmap.json" \
  || fail "heatmap recorded no in-block traffic"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/heatmap.json" > /dev/null \
    || fail "heatmap not valid JSON"
fi

# --iotrace-out recorded the jobs' block traffic; the trace must load and
# replay. No --check: service jobs run on pool workers, so replay fidelity is
# approximate for multi-threaded traces (see obs/iotrace.hpp).
[ -s "$WORK/serve_trace.bin" ] || fail "serve trace missing"
"$REPLAY" --trace "$WORK/serve_trace.bin" --quiet \
  > /dev/null || fail "serve trace failed to load/replay"

# --- Phase 2: frozen heartbeat trips the watchdog ---------------------------
# HUSG_TEST_FREEZE_HEARTBEAT=frozen-pr freezes that job's progress beat at
# submission, so the stall rule fires after --watchdog-ms even though the job
# is making real progress. /readyz must flip to 503 naming the stalled job, a
# watchdog bundle must land in --bundle-dir, and the scrape must carry a
# nonzero husg_anomaly_stalled_jobs_total.
cat > "$WORK/jobs2.json" <<'EOF'
[
  {"name": "frozen-pr", "algo": "pagerank", "iterations": 20000,
   "timeout_ms": 120000}
]
EOF

HUSG_TEST_FREEZE_HEARTBEAT=frozen-pr \
  "$CLI" serve --store "$WORK/store" --jobs "$WORK/jobs2.json" \
  --admin-port 0 --watchdog-ms 200 --bundle-dir "$WORK/bundles" \
  > "$WORK/serve2.log" 2>&1 &
SERVE_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^admin server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$WORK/serve2.log" | head -n1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "serve #2 exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "serve #2 admin port never announced"

# Poll until the watchdog declares the job stalled and degrades readiness.
READY_CODE=""
for _ in $(seq 1 100); do
  READY_CODE=$(fetch_code "$PORT" /readyz "$WORK/readyz.degraded" || true)
  [ "$READY_CODE" = "503" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
[ "$READY_CODE" = "503" ] || fail "/readyz never degraded (last: $READY_CODE)"
grep -q '"status":"degraded"' "$WORK/readyz.degraded" \
  || fail "degraded /readyz body missing status"
grep -q 'stalled_job' "$WORK/readyz.degraded" \
  || fail "degraded /readyz body missing stalled_job reason"
grep -q 'frozen-pr' "$WORK/readyz.degraded" \
  || fail "degraded /readyz body does not name the job"

# The on-demand bundle route serves a parseable bundle while degraded.
fetch GET "$PORT" /debug/bundle > "$WORK/debug.bundle.json" \
  || fail "GET /debug/bundle"
grep -q '"bundle_version"' "$WORK/debug.bundle.json" \
  || fail "/debug/bundle missing bundle_version"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$WORK/debug.bundle.json" > /dev/null \
    || fail "/debug/bundle not valid JSON"
fi

# The anomaly counters must be live (and nonzero for the stall) in /metrics.
fetch GET "$PORT" /metrics > "$WORK/metrics2.live"
grep -q '^husg_anomaly_stalled_jobs_total [1-9]' "$WORK/metrics2.live" \
  || fail "scrape missing nonzero stalled-jobs counter"
if command -v python3 > /dev/null 2>&1; then
  python3 "$(dirname "$0")/../tools/check_prom.py" \
    --require-family husg_anomaly --require-family husg_cpu \
    --require-family husg_lock "$WORK/metrics2.live" \
    > /dev/null || fail "degraded metrics not valid Prometheus exposition"
fi

# The watchdog trip wrote a bundle file (the write races the readiness flip
# by a callback, so poll briefly). Match the stalled-job slug specifically:
# the frozen beat can trip other rules first (mispredict streak), and
# --bundle-dir also pre-creates an empty crash-<pid>.bundle.json for the
# signal handler's pre-opened fd.
BUNDLE=""
for _ in $(seq 1 50); do
  BUNDLE=$(ls "$WORK/bundles"/*-watchdog-stalled-job.bundle.json 2>/dev/null \
    | head -n1)
  [ -n "$BUNDLE" ] && break
  sleep 0.1
done
[ -n "$BUNDLE" ] || fail "watchdog trip wrote no bundle"

# Let the batch finish; the job itself still completes.
wait "$SERVE_PID" || fail "serve #2 exited nonzero"
SERVE_PID=""
grep -q 'frozen-pr.*completed' "$WORK/serve2.log" \
  || fail "frozen-pr did not complete"

# Offline triage: inspect-bundle pretty-prints the bundle and names the
# stalled job in its anomaly section.
"$CLI" inspect-bundle --bundle "$BUNDLE" > "$WORK/inspect.txt" \
  || fail "inspect-bundle failed"
grep -q 'stalled_job' "$WORK/inspect.txt" \
  || fail "inspect-bundle missing stalled_job anomaly"
grep -q 'frozen-pr' "$WORK/inspect.txt" \
  || fail "inspect-bundle does not name the stalled job"

echo "serve_admin_test OK"
