file(REMOVE_RECURSE
  "CMakeFiles/fig10_threads.dir/bench/fig10_threads.cpp.o"
  "CMakeFiles/fig10_threads.dir/bench/fig10_threads.cpp.o.d"
  "bench/fig10_threads"
  "bench/fig10_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
