file(REMOVE_RECURSE
  "CMakeFiles/fig09_io_amount.dir/bench/fig09_io_amount.cpp.o"
  "CMakeFiles/fig09_io_amount.dir/bench/fig09_io_amount.cpp.o.d"
  "bench/fig09_io_amount"
  "bench/fig09_io_amount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_io_amount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
