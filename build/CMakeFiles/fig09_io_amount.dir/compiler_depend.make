# Empty compiler generated dependencies file for fig09_io_amount.
# This may be replaced when dependencies are built.
