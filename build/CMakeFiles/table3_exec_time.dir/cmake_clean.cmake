file(REMOVE_RECURSE
  "CMakeFiles/table3_exec_time.dir/bench/table3_exec_time.cpp.o"
  "CMakeFiles/table3_exec_time.dir/bench/table3_exec_time.cpp.o.d"
  "bench/table3_exec_time"
  "bench/table3_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
