file(REMOVE_RECURSE
  "CMakeFiles/fig07_hybrid_effect.dir/bench/fig07_hybrid_effect.cpp.o"
  "CMakeFiles/fig07_hybrid_effect.dir/bench/fig07_hybrid_effect.cpp.o.d"
  "bench/fig07_hybrid_effect"
  "bench/fig07_hybrid_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_hybrid_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
