# Empty compiler generated dependencies file for fig07_hybrid_effect.
# This may be replaced when dependencies are built.
