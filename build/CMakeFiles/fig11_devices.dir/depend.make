# Empty dependencies file for fig11_devices.
# This may be replaced when dependencies are built.
