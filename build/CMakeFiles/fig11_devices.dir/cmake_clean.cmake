file(REMOVE_RECURSE
  "CMakeFiles/fig11_devices.dir/bench/fig11_devices.cpp.o"
  "CMakeFiles/fig11_devices.dir/bench/fig11_devices.cpp.o.d"
  "bench/fig11_devices"
  "bench/fig11_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
