file(REMOVE_RECURSE
  "CMakeFiles/ablation_semi_external.dir/bench/ablation_semi_external.cpp.o"
  "CMakeFiles/ablation_semi_external.dir/bench/ablation_semi_external.cpp.o.d"
  "bench/ablation_semi_external"
  "bench/ablation_semi_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_semi_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
