# Empty dependencies file for ablation_semi_external.
# This may be replaced when dependencies are built.
