# Empty dependencies file for fig01_active_edges.
# This may be replaced when dependencies are built.
