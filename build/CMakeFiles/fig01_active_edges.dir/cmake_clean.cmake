file(REMOVE_RECURSE
  "CMakeFiles/fig01_active_edges.dir/bench/fig01_active_edges.cpp.o"
  "CMakeFiles/fig01_active_edges.dir/bench/fig01_active_edges.cpp.o.d"
  "bench/fig01_active_edges"
  "bench/fig01_active_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_active_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
