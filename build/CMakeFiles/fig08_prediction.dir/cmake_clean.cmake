file(REMOVE_RECURSE
  "CMakeFiles/fig08_prediction.dir/bench/fig08_prediction.cpp.o"
  "CMakeFiles/fig08_prediction.dir/bench/fig08_prediction.cpp.o.d"
  "bench/fig08_prediction"
  "bench/fig08_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
