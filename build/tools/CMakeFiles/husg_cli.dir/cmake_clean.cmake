file(REMOVE_RECURSE
  "CMakeFiles/husg_cli.dir/husg_cli.cpp.o"
  "CMakeFiles/husg_cli.dir/husg_cli.cpp.o.d"
  "husg_cli"
  "husg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/husg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
