# Empty compiler generated dependencies file for husg_cli.
# This may be replaced when dependencies are built.
