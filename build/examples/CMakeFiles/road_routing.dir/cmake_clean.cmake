file(REMOVE_RECURSE
  "CMakeFiles/road_routing.dir/road_routing.cpp.o"
  "CMakeFiles/road_routing.dir/road_routing.cpp.o.d"
  "road_routing"
  "road_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
