file(REMOVE_RECURSE
  "libhusg.a"
)
