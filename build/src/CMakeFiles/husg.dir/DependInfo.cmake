
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/flashgraph/flash_store.cpp" "src/CMakeFiles/husg.dir/baselines/flashgraph/flash_store.cpp.o" "gcc" "src/CMakeFiles/husg.dir/baselines/flashgraph/flash_store.cpp.o.d"
  "/root/repo/src/baselines/graphchi/chi_store.cpp" "src/CMakeFiles/husg.dir/baselines/graphchi/chi_store.cpp.o" "gcc" "src/CMakeFiles/husg.dir/baselines/graphchi/chi_store.cpp.o.d"
  "/root/repo/src/baselines/gridgraph/grid_store.cpp" "src/CMakeFiles/husg.dir/baselines/gridgraph/grid_store.cpp.o" "gcc" "src/CMakeFiles/husg.dir/baselines/gridgraph/grid_store.cpp.o.d"
  "/root/repo/src/baselines/xstream/xstream_store.cpp" "src/CMakeFiles/husg.dir/baselines/xstream/xstream_store.cpp.o" "gcc" "src/CMakeFiles/husg.dir/baselines/xstream/xstream_store.cpp.o.d"
  "/root/repo/src/bench_support/datasets.cpp" "src/CMakeFiles/husg.dir/bench_support/datasets.cpp.o" "gcc" "src/CMakeFiles/husg.dir/bench_support/datasets.cpp.o.d"
  "/root/repo/src/bench_support/harness.cpp" "src/CMakeFiles/husg.dir/bench_support/harness.cpp.o" "gcc" "src/CMakeFiles/husg.dir/bench_support/harness.cpp.o.d"
  "/root/repo/src/bench_support/report.cpp" "src/CMakeFiles/husg.dir/bench_support/report.cpp.o" "gcc" "src/CMakeFiles/husg.dir/bench_support/report.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/husg.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/husg.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/CMakeFiles/husg.dir/core/frontier.cpp.o" "gcc" "src/CMakeFiles/husg.dir/core/frontier.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/husg.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/husg.dir/core/predictor.cpp.o.d"
  "/root/repo/src/core/run_stats.cpp" "src/CMakeFiles/husg.dir/core/run_stats.cpp.o" "gcc" "src/CMakeFiles/husg.dir/core/run_stats.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/husg.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/husg.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/husg.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/husg.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/CMakeFiles/husg.dir/graph/graph_io.cpp.o" "gcc" "src/CMakeFiles/husg.dir/graph/graph_io.cpp.o.d"
  "/root/repo/src/graph/reference.cpp" "src/CMakeFiles/husg.dir/graph/reference.cpp.o" "gcc" "src/CMakeFiles/husg.dir/graph/reference.cpp.o.d"
  "/root/repo/src/io/device.cpp" "src/CMakeFiles/husg.dir/io/device.cpp.o" "gcc" "src/CMakeFiles/husg.dir/io/device.cpp.o.d"
  "/root/repo/src/io/file.cpp" "src/CMakeFiles/husg.dir/io/file.cpp.o" "gcc" "src/CMakeFiles/husg.dir/io/file.cpp.o.d"
  "/root/repo/src/io/io_stats.cpp" "src/CMakeFiles/husg.dir/io/io_stats.cpp.o" "gcc" "src/CMakeFiles/husg.dir/io/io_stats.cpp.o.d"
  "/root/repo/src/storage/layout.cpp" "src/CMakeFiles/husg.dir/storage/layout.cpp.o" "gcc" "src/CMakeFiles/husg.dir/storage/layout.cpp.o.d"
  "/root/repo/src/storage/store.cpp" "src/CMakeFiles/husg.dir/storage/store.cpp.o" "gcc" "src/CMakeFiles/husg.dir/storage/store.cpp.o.d"
  "/root/repo/src/util/bitmap.cpp" "src/CMakeFiles/husg.dir/util/bitmap.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/bitmap.cpp.o.d"
  "/root/repo/src/util/common.cpp" "src/CMakeFiles/husg.dir/util/common.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/common.cpp.o.d"
  "/root/repo/src/util/format.cpp" "src/CMakeFiles/husg.dir/util/format.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/format.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/husg.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/options.cpp" "src/CMakeFiles/husg.dir/util/options.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/options.cpp.o.d"
  "/root/repo/src/util/threadpool.cpp" "src/CMakeFiles/husg.dir/util/threadpool.cpp.o" "gcc" "src/CMakeFiles/husg.dir/util/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
