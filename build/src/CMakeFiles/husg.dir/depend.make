# Empty dependencies file for husg.
# This may be replaced when dependencies are built.
