#!/usr/bin/env python3
"""Perf-regression gate: compare a BENCH_<name>.json run against a baseline.

The smoke bench (bench/perf_smoke.cpp) pins a deterministic workload, so
I/O byte counts, random-op counts, iteration counts, and cache counters
must match the checked-in baseline exactly (tolerance 0 by default;
--io-tol loosens it to a relative fraction). modeled_seconds is a pure
function of those counts and the device model, compared with a tiny float
tolerance. wall_seconds is machine noise and is only reported — it gates
nothing unless --strict-wall is given.

Exit codes: 0 = no regression, 1 = regression (or schema mismatch between
the two reports), 2 = usage / unreadable input.
"""

import argparse
import json
import sys

# Deterministic per-run counters: must match within --io-tol (default: exact).
EXACT_FIELDS = [
    "iterations",
    "io_total_bytes",
    "io_seq_read_bytes",
    "io_rand_read_bytes",
    "io_rand_read_ops",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_bytes_saved",
    "cache_cross_job_hits",
    "heatmap_reads",
    "heatmap_hits",
    "heatmap_misses",
    "heatmap_evictions",
]
# Derived float metrics (ratios of deterministic counters): compared with
# --model-tol, since exact equality of doubles through JSON round-trips is
# brittle while the underlying counters are already gated exactly.
FLOAT_FIELDS = [
    "read_bytes_per_edge",
    "store_adj_bytes_per_edge",
    # Deterministic derivatives of exactly-gated counters (hits/lookups and
    # the predictor audit's modeled costs); wall-derived audit fields
    # (wall_audit_*) are deliberately NOT gated.
    "cache_hit_rate",
    "predictor_mean_rel_error",
]
MODEL_FIELD = "modeled_seconds"
WALL_FIELD = "wall_seconds"
# Absolute ceilings: the current value must stay at or below the bound no
# matter what the baseline recorded. Used for noisy-but-bounded metrics
# where diffing two noisy samples against each other would flake — the
# armed-profiler overhead (bench/perf_smoke.cpp) must stay within 5%.
MAX_FIELDS = {
    "profiler_overhead_ratio": 0.05,
}


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_regress: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "runs" not in data or not isinstance(data["runs"], list):
        print(f"bench_regress: {path} has no 'runs' array", file=sys.stderr)
        sys.exit(2)
    runs = {}
    for run in data["runs"]:
        label = run.get("label")
        if not label:
            print(f"bench_regress: {path}: run without a label",
                  file=sys.stderr)
            sys.exit(2)
        if label in runs:
            print(f"bench_regress: {path}: duplicate label {label!r}",
                  file=sys.stderr)
            sys.exit(2)
        runs[label] = run
    return data.get("bench", "?"), runs


def rel_delta(base, cur):
    if base == cur:
        return 0.0
    if base == 0:
        return float("inf")
    return (cur - base) / base


def main():
    ap = argparse.ArgumentParser(
        description="compare a bench JSON report against a baseline")
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_<name>.json to compare against")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_<name>.json")
    ap.add_argument("--io-tol", type=float, default=0.0,
                    help="relative tolerance for I/O and cache counters "
                         "(default 0: exact match)")
    ap.add_argument("--model-tol", type=float, default=1e-4,
                    help="relative tolerance for modeled_seconds")
    ap.add_argument("--wall-tol", type=float, default=0.5,
                    help="relative wall-clock tolerance (only enforced "
                         "with --strict-wall)")
    ap.add_argument("--strict-wall", action="store_true",
                    help="fail on wall_seconds regressions beyond "
                         "--wall-tol (off by default: wall time is "
                         "machine noise)")
    ap.add_argument("--strict", action="store_true",
                    help="treat baseline keys absent from the current "
                         "report as failures instead of warnings (a bench "
                         "that silently stops emitting a counter must not "
                         "pass the gate)")
    args = ap.parse_args()

    base_name, base_runs = load_report(args.baseline)
    cur_name, cur_runs = load_report(args.current)
    failures = []

    if base_name != cur_name:
        failures.append(
            f"bench name mismatch: baseline={base_name!r} "
            f"current={cur_name!r}")
    missing = sorted(set(base_runs) - set(cur_runs))
    extra = sorted(set(cur_runs) - set(base_runs))
    for label in missing:
        failures.append(f"run {label!r} missing from current report")
    for label in extra:
        failures.append(f"run {label!r} not in baseline "
                        "(regenerate bench/baselines)")

    for label in sorted(set(base_runs) & set(cur_runs)):
        base, cur = base_runs[label], cur_runs[label]
        # A baseline key absent from the fresh report is easy to lose
        # silently when a bench stops emitting a counter: warn so the gap is
        # visible (--strict upgrades the warning to a failure), but only
        # gate the values of fields this script understands.
        gated = set(EXACT_FIELDS) | set(FLOAT_FIELDS) | set(MAX_FIELDS) | {
            MODEL_FIELD, WALL_FIELD}
        dropped = sorted(set(base) - set(cur) - gated)
        for key in dropped:
            if args.strict:
                failures.append(f"{label}: baseline key {key!r} absent "
                                "from current report (--strict)")
            else:
                print(f"bench_regress: warning: {label}: baseline key "
                      f"{key!r} absent from current report",
                      file=sys.stderr)
        for field in EXACT_FIELDS:
            if field not in base:
                continue  # older baseline schema: skip, don't crash
            if field not in cur:
                failures.append(f"{label}: field {field!r} missing from "
                                "current report")
                continue
            d = rel_delta(base[field], cur[field])
            if abs(d) > args.io_tol:
                failures.append(
                    f"{label}: {field} changed {base[field]} -> "
                    f"{cur[field]} ({d:+.2%}, tol {args.io_tol:.2%})")
        for field in FLOAT_FIELDS:
            if field not in base:
                continue  # older baseline schema: skip, don't crash
            if field not in cur:
                failures.append(f"{label}: field {field!r} missing from "
                                "current report")
                continue
            d = rel_delta(base[field], cur[field])
            if abs(d) > args.model_tol:
                failures.append(
                    f"{label}: {field} changed {base[field]} -> "
                    f"{cur[field]} ({d:+.2%}, tol {args.model_tol:.2%})")
        for field, ceiling in MAX_FIELDS.items():
            if field not in base:
                continue  # older baseline schema: skip, don't crash
            if field not in cur:
                failures.append(f"{label}: field {field!r} missing from "
                                "current report")
                continue
            if cur[field] > ceiling:
                failures.append(
                    f"{label}: {field} = {cur[field]} exceeds the "
                    f"absolute ceiling {ceiling}")
        if MODEL_FIELD in base and MODEL_FIELD in cur:
            d = rel_delta(base[MODEL_FIELD], cur[MODEL_FIELD])
            if abs(d) > args.model_tol:
                failures.append(
                    f"{label}: {MODEL_FIELD} changed {base[MODEL_FIELD]} "
                    f"-> {cur[MODEL_FIELD]} ({d:+.2%})")
        if WALL_FIELD in base and WALL_FIELD in cur:
            d = rel_delta(base[WALL_FIELD], cur[WALL_FIELD])
            note = ""
            if args.strict_wall and d > args.wall_tol:
                failures.append(
                    f"{label}: {WALL_FIELD} regressed "
                    f"{base[WALL_FIELD]:.4f}s -> {cur[WALL_FIELD]:.4f}s "
                    f"({d:+.2%}, tol {args.wall_tol:.2%})")
                note = "  FAIL"
            print(f"  {label}: wall {base[WALL_FIELD]:.4f}s -> "
                  f"{cur[WALL_FIELD]:.4f}s ({d:+.2%}, advisory){note}")

    if failures:
        print(f"\nbench_regress: {len(failures)} regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_regress: OK — {len(base_runs)} run(s) match "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
