#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (as written by --metrics-out).

Checks, per the text format spec:
  * every non-comment line is `name[{labels}] value` with a valid metric
    name and a parseable float value;
  * each sample is preceded by # HELP / # TYPE lines for its family, and
    the family's samples are contiguous;
  * histogram families expose `_bucket{le=...}` series with non-decreasing
    cumulative counts, a final le="+Inf" bucket, and `_sum` / `_count`
    samples where count equals the +Inf bucket;
  * label values use only the escapes the format defines (\\, \", \n);
  * no family declares # HELP or # TYPE twice, and no two samples share
    the same name and label set.

Optionally, `--require-family PREFIX` (repeatable) additionally demands that
at least one declared family starts with PREFIX — CI uses this to assert the
husg_calibration_* / husg_mrc_* families really made it into a serve-mode
scrape, not just that the exposition parses.

Usage: check_prom.py [--require-family PREFIX]... FILE
       (exit 0 = valid, 1 = malformed or missing a required family)
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(lineno, msg):
    print(f"check_prom: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path, require_families=()):
    helps = {}
    types = {}
    samples = []  # (lineno, name, labels, value)
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                parts = line.split(None, 3)
                if len(parts) < 3 or not NAME_RE.match(parts[2]):
                    fail(lineno, f"malformed HELP line: {line!r}")
                if parts[2] in helps:
                    fail(lineno, f"duplicate HELP for {parts[2]}")
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4 or not NAME_RE.match(parts[2]):
                    fail(lineno, f"malformed TYPE line: {line!r}")
                if parts[3] not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                    fail(lineno, f"unknown metric type {parts[3]!r}")
                if parts[2] in types:
                    fail(lineno, f"duplicate TYPE for {parts[2]}")
                types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue  # plain comment
            m = SAMPLE_RE.match(line)
            if not m:
                fail(lineno, f"malformed sample line: {line!r}")
            labels = {}
            if m.group("labels"):
                for pair in m.group("labels").split(","):
                    pair = pair.strip()
                    if not LABEL_RE.match(pair):
                        fail(lineno, f"malformed label {pair!r}")
                    key, val = pair.split("=", 1)
                    raw_val = val[1:-1]
                    # The exposition format defines exactly three escapes
                    # inside label values: \\ , \" and \n.
                    k = 0
                    while k < len(raw_val):
                        if raw_val[k] == "\\":
                            if (k + 1 >= len(raw_val)
                                    or raw_val[k + 1] not in ('\\', '"', 'n')):
                                fail(lineno,
                                     f"invalid escape in label value "
                                     f"{raw_val!r}")
                            k += 2
                        else:
                            k += 1
                    if key in labels:
                        fail(lineno, f"duplicate label name {key!r}")
                    labels[key] = raw_val
            value = m.group("value")
            if value not in ("+Inf", "-Inf", "NaN"):
                try:
                    float(value)
                except ValueError:
                    fail(lineno, f"unparseable value {value!r}")
            samples.append((lineno, m.group("name"), labels, value))

    if not samples:
        fail(0, "no samples found")

    # Two samples with the same name and label set would be ambiguous to a
    # scraper (last-one-wins or rejection, depending on the consumer).
    seen_series = set()
    for lineno, name, labels, _ in samples:
        key = (name, tuple(sorted(labels.items())))
        if key in seen_series:
            fail(lineno, f"duplicate sample for {name} {labels}")
        seen_series.add(key)

    # Each sample must belong to a declared family, and families must be
    # contiguous blocks (the spec forbids interleaving).
    seen_families = []
    for lineno, name, _, _ in samples:
        family = name
        if name not in types:
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in types:
                    family = name[: -len(suffix)]
                    break
        if family not in types:
            fail(lineno, f"sample {name} has no # TYPE declaration")
        if family not in helps:
            fail(lineno, f"sample {name} has no # HELP declaration")
        if not seen_families or seen_families[-1] != family:
            if family in seen_families:
                fail(lineno, f"family {family} is not contiguous")
            seen_families.append(family)

    # Histogram invariants.
    for family, typ in types.items():
        if typ != "histogram":
            continue
        buckets = [(ln, lb, v) for ln, n, lb, v in samples
                   if n == family + "_bucket"]
        if not buckets:
            fail(0, f"histogram {family} has no _bucket samples")
        prev = -1.0
        prev_le = None
        for ln, labels, value in buckets:
            if "le" not in labels:
                fail(ln, f"{family}_bucket sample missing le label")
            le = labels["le"]
            if le != "+Inf":
                le_num = float(le)
                if prev_le is not None and le_num <= prev_le:
                    fail(ln, f"{family} bucket bounds not increasing")
                prev_le = le_num
            count = float(value)
            if count < prev:
                fail(ln, f"{family} cumulative bucket counts decrease")
            prev = count
        if buckets[-1][1].get("le") != "+Inf":
            fail(buckets[-1][0], f"{family} missing le=\"+Inf\" bucket")
        counts = [v for ln, n, lb, v in samples if n == family + "_count"]
        sums = [v for ln, n, lb, v in samples if n == family + "_sum"]
        if len(counts) != 1 or len(sums) != 1:
            fail(0, f"histogram {family} needs exactly one _sum and _count")
        if float(counts[0]) != float(buckets[-1][2]):
            fail(0, f"{family}_count != le=\"+Inf\" bucket count")

    for prefix in require_families:
        if not any(family.startswith(prefix) for family in types):
            fail(0, f"no metric family starts with required prefix "
                    f"{prefix!r}")

    print(f"check_prom: {path}: OK "
          f"({len(samples)} samples, {len(types)} families)")
    return 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    required = []
    while len(argv) >= 2 and argv[0] == "--require-family":
        required.append(argv[1])
        argv = argv[2:]
    if len(argv) != 1 or argv[0].startswith("--"):
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    sys.exit(main(argv[0], required))
