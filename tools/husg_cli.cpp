// husg_cli: command-line front end for the HUS-Graph library.
//
//   husg_cli generate --type rmat --scale 18 --degree 16 --out graph.bin
//   husg_cli build    --graph graph.bin --store /data/store --partitions 16
//   husg_cli info     --store /data/store
//   husg_cli run      --store /data/store --algo bfs --source 0
//                     [--mode hybrid|rop|cop] [--threads 8]
//                     [--device hdd|ssd|nvme] [--seek-scale 1.0]
//                     [--iters 5] [--alpha 0.05] [--sync jacobi|async]
//                     [--cache-budget 67108864] [--cache-fraction 0.25]
//                     [--predictor paper|exact|cache-aware]
//                     [--out values.txt] [--trace]
//
// Text graphs ("src dst [w]" per line) and the compact binary format are
// both accepted wherever a graph file is expected (picked by extension:
// .txt/.el -> text, anything else -> binary).
#include <cstdio>
#include <cstring>
#include <fstream>

#include "husg/husg.hpp"

namespace husg {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: husg_cli <generate|build|info|verify|run> [options]\n"
      "  generate --type rmat|er|web|chain|grid --scale N [--degree D]\n"
      "           [--seed S] [--weighted] --out FILE\n"
      "  build    --graph FILE --store DIR [--partitions P]\n"
      "           [--scheme vertices|degree] [--symmetrize] [--external]\n"
      "           [--compress]\n"
      "  info     --store DIR\n"
      "  verify   --store DIR     (recompute and check file checksums)\n"
      "  run      --store DIR --algo "
      "bfs|wcc|sssp|pagerank|prdelta|spmv|kcore\n"
      "           [--source V] [--mode hybrid|rop|cop] [--threads T]\n"
      "           [--device hdd|ssd|nvme] [--seek-scale F] [--iters K]\n"
      "           [--alpha A] [--sync jacobi|async] [--out FILE] [--trace]\n"
      "           [--cache-budget BYTES] [--cache-fraction F]\n"
      "           [--no-cache-fill-rop]\n"
      "           [--predictor paper|exact|cache-aware]\n");
  return 2;
}

EdgeList load_graph(const std::string& path) {
  if (path.size() > 4 && (path.ends_with(".txt") || path.ends_with(".el"))) {
    return load_text_edges(path);
  }
  return load_binary_edges(path);
}

void save_graph(const EdgeList& g, const std::string& path) {
  if (path.ends_with(".txt") || path.ends_with(".el")) {
    save_text_edges(g, path);
  } else {
    save_binary_edges(g, path);
  }
}

int cmd_generate(const Options& opts) {
  std::string type = opts.get("type", "rmat");
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 16));
  double degree = opts.get_double("degree", 16.0);
  std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  std::string out = opts.get("out", "");
  if (out.empty()) return usage();

  EdgeList g(1, {});
  if (type == "rmat") {
    g = gen::rmat(scale, degree, seed);
  } else if (type == "er") {
    VertexId n = VertexId{1} << scale;
    g = gen::erdos_renyi(n, static_cast<EdgeId>(degree * n), seed);
  } else if (type == "web") {
    g = gen::webgraph(scale, degree, seed);
  } else if (type == "chain") {
    g = gen::chain(VertexId{1} << scale);
  } else if (type == "grid") {
    VertexId side = VertexId{1} << (scale / 2);
    g = gen::grid2d(side, side);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 2;
  }
  if (opts.get_bool("weighted", false)) {
    g = gen::with_random_weights(g, seed ^ 0xBEEF);
  }
  save_graph(g, out);
  std::printf("wrote %s: %u vertices, %llu edges%s\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.weighted() ? " (weighted)" : "");
  return 0;
}

int cmd_build(const Options& opts) {
  std::string graph = opts.get("graph", "");
  std::string store_dir = opts.get("store", "");
  if (graph.empty() || store_dir.empty()) return usage();
  EdgeList g = load_graph(graph);
  if (opts.get_bool("symmetrize", false)) g = g.symmetrized();
  StoreOptions so;
  so.num_partitions =
      static_cast<std::uint32_t>(opts.get_int("partitions", 8));
  so.scheme = opts.get("scheme", "vertices") == "degree"
                  ? PartitionScheme::kEqualDegree
                  : PartitionScheme::kEqualVertices;
  if (opts.get_bool("external", false)) {
    so.build_mode = BuildMode::kExternal;
  }
  so.compress_in_blocks = opts.get_bool("compress", false);
  Timer timer;
  DualBlockStore store = DualBlockStore::build(g, store_dir, so);
  std::printf("built dual-block store at %s in %s\n", store_dir.c_str(),
              human_seconds(timer.seconds()).c_str());
  std::printf("  |V|=%llu |E|=%llu P=%u record=%uB\n",
              static_cast<unsigned long long>(store.meta().num_vertices),
              static_cast<unsigned long long>(store.meta().num_edges),
              store.meta().p(), store.meta().edge_record_bytes());
  return 0;
}

int cmd_verify(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  if (store_dir.empty()) return usage();
  DualBlockStore store = DualBlockStore::open(store_dir);
  Timer timer;
  store.verify();  // throws on mismatch -> error path in main()
  std::printf("store %s verified OK (%llu edges, %s)\n", store_dir.c_str(),
              static_cast<unsigned long long>(store.meta().num_edges),
              human_seconds(timer.seconds()).c_str());
  return 0;
}

int cmd_info(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  if (store_dir.empty()) return usage();
  DualBlockStore store = DualBlockStore::open(store_dir);
  const StoreMeta& m = store.meta();
  std::printf("dual-block store %s\n", store_dir.c_str());
  std::printf("  vertices:   %llu\n",
              static_cast<unsigned long long>(m.num_vertices));
  std::printf("  edges:      %llu (%s)\n",
              static_cast<unsigned long long>(m.num_edges),
              m.weighted ? "weighted, 8B records" : "unweighted, 4B records");
  std::printf("  partitions: %u (%zu edge blocks per side)\n", m.p(),
              static_cast<std::size_t>(m.p()) * m.p());
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    std::uint64_t row_edges = 0, col_edges = 0;
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      row_edges += m.out_block(i, j).edge_count;
      col_edges += m.in_block(j, i).edge_count;
    }
    std::printf("  interval %2u: [%u, %u)  out-edges %llu  in-edges %llu\n",
                i, m.interval_begin(i), m.interval_end(i),
                static_cast<unsigned long long>(row_edges),
                static_cast<unsigned long long>(col_edges));
  }
  return 0;
}

DeviceProfile parse_device(const Options& opts) {
  std::string name = opts.get("device", "ssd");
  DeviceProfile dev = name == "hdd"    ? DeviceProfile::hdd7200()
                      : name == "nvme" ? DeviceProfile::nvme_ssd()
                                       : DeviceProfile::sata_ssd();
  double scale = opts.get_double("seek-scale", 1.0);
  if (scale != 1.0) dev = dev.with_seek_scale(scale);
  return dev;
}

template <class V, class Fmt>
void maybe_dump(const Options& opts, const std::vector<V>& values, Fmt&& fmt) {
  std::string out = opts.get("out", "");
  if (out.empty()) return;
  std::ofstream f(out);
  for (VertexId v = 0; v < values.size(); ++v) {
    f << v << ' ' << fmt(values[v]) << '\n';
  }
  std::printf("wrote %zu values to %s\n", values.size(), out.c_str());
}

void print_trace(const RunStats& stats, bool trace) {
  std::printf("%s\n", stats.summary().c_str());
  if (!trace) return;
  for (const auto& it : stats.iterations) {
    std::printf("  iter %3d: active=%llu model=%s io=%s modeled=%s",
                it.iteration,
                static_cast<unsigned long long>(it.active_vertices),
                it.any_rop() ? (it.any_cop() ? "mixed" : "ROP") : "COP",
                human_bytes(it.io.total_bytes()).c_str(),
                human_seconds(it.modeled_seconds()).c_str());
    if (it.cache.lookups() > 0) {
      std::printf(" cache-hit=%.0f%% saved=%s", 100.0 * it.cache.hit_rate(),
                  human_bytes(it.cache.bytes_saved).c_str());
    }
    std::printf("\n");
  }
}

int cmd_run(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  std::string algo = opts.get("algo", "");
  if (store_dir.empty() || algo.empty()) return usage();
  DualBlockStore store = DualBlockStore::open(store_dir);

  EngineOptions eo;
  std::string mode = opts.get("mode", "hybrid");
  eo.mode = mode == "rop"   ? UpdateMode::kRop
            : mode == "cop" ? UpdateMode::kCop
                            : UpdateMode::kHybrid;
  eo.sync = opts.get("sync", "jacobi") == "async" ? SyncMode::kPaperAsync
                                                  : SyncMode::kJacobi;
  eo.threads = static_cast<std::size_t>(opts.get_int("threads", 4));
  eo.device = parse_device(opts);
  eo.alpha = opts.get_double("alpha", 0.05);
  eo.cache_budget_bytes =
      static_cast<std::uint64_t>(opts.get_int("cache-budget", 0));
  eo.cache_max_block_fraction = opts.get_double("cache-fraction", 0.25);
  eo.cache_fill_rop = !opts.get_bool("no-cache-fill-rop", false);
  std::string predictor = opts.get("predictor", "exact");
  if (predictor == "paper") {
    eo.predictor = PredictorFlavor::kPaper;
  } else if (predictor == "cache-aware") {
    eo.predictor = PredictorFlavor::kCacheAware;
  } else if (predictor == "exact") {
    eo.predictor = PredictorFlavor::kDeviceExact;
  } else {
    std::fprintf(stderr, "unknown --predictor '%s'\n", predictor.c_str());
    return 2;
  }
  int iters = static_cast<int>(opts.get_int("iters", 0));
  bool trace = opts.get_bool("trace", false);
  VertexId source = static_cast<VertexId>(opts.get_int("source", 0));

  Engine engine(store, eo);
  auto single = [&] {
    return Frontier::single(store.meta(), source, store.out_degrees());
  };
  auto all = [&] {
    return Frontier::all(store.meta(), store.out_degrees());
  };

  if (algo == "bfs") {
    BfsProgram p{.source = source};
    auto r = engine.run(p, single());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values, [](std::uint32_t v) { return v; });
  } else if (algo == "wcc") {
    WccProgram p;
    auto r = engine.run(p, all());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values, [](VertexId v) { return v; });
  } else if (algo == "sssp") {
    SsspProgram p{.source = source};
    auto r = engine.run(p, single());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else if (algo == "pagerank") {
    Engine pr_engine(store, [&] {
      EngineOptions o = eo;
      o.max_iterations = iters > 0 ? iters : 5;
      return o;
    }());
    PageRankProgram p;
    auto r = pr_engine.run(p, all());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else if (algo == "prdelta") {
    PageRankDeltaProgram p;
    auto r = engine.run(p, all());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values,
               [](const PageRankDeltaValue& v) { return v.rank; });
  } else if (algo == "kcore") {
    std::uint32_t k = static_cast<std::uint32_t>(opts.get_int("k", 3));
    KCoreProgram p;
    p.k = k;
    auto r = engine.run(p, kcore_initial_frontier(store, k));
    std::uint64_t survivors = 0;
    for (const auto& val : r.values) survivors += val.removed == 0 ? 1 : 0;
    print_trace(r.stats, trace);
    std::printf("%u-core size: %llu of %llu vertices (run on a symmetrized "
                "store for the undirected k-core)\n",
                k, static_cast<unsigned long long>(survivors),
                static_cast<unsigned long long>(store.meta().num_vertices));
    maybe_dump(opts, r.values,
               [](const KCoreValue& v) { return v.removed == 0 ? 1 : 0; });
  } else if (algo == "spmv") {
    Engine spmv_engine(store, [&] {
      EngineOptions o = eo;
      o.max_iterations = iters > 0 ? iters : 1;
      return o;
    }());
    SpmvProgram p;
    auto r = spmv_engine.run(p, all());
    print_trace(r.stats, trace);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace husg

int main(int argc, char** argv) {
  using namespace husg;
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Options opts = Options::parse(argc - 1, argv + 1);
  try {
    if (cmd == "generate") return cmd_generate(opts);
    if (cmd == "build") return cmd_build(opts);
    if (cmd == "info") return cmd_info(opts);
    if (cmd == "verify") return cmd_verify(opts);
    if (cmd == "run") return cmd_run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
