// husg_cli: command-line front end for the HUS-Graph library.
//
//   husg_cli generate --type rmat --scale 18 --degree 16 --out graph.bin
//   husg_cli build    --graph graph.bin --store /data/store --partitions 16
//   husg_cli info     --store /data/store
//   husg_cli run      --store /data/store --algo bfs --source 0
//                     [--mode hybrid|rop|cop] [--threads 8]
//                     [--device hdd|ssd|nvme] [--seek-scale 1.0]
//                     [--iters 5] [--alpha 0.05] [--sync jacobi|async]
//                     [--cache-budget 67108864] [--cache-fraction 0.25]
//                     [--predictor paper|exact|cache-aware]
//                     [--out values.txt] [--trace]
//   husg_cli serve    --store /data/store --jobs jobs.json
//                     [--max-concurrent 2] [--queue 16]
//                     [--threads-per-job 2] [--memory-budget BYTES]
//                     [--cache-budget BYTES] [--report report.json]
//
// Text graphs ("src dst [w]" per line) and the compact binary format are
// both accepted wherever a graph file is expected (picked by extension:
// .txt/.el -> text, anything else -> binary).
//
// Exit codes: 0 success, 1 runtime error (and `serve` with any job not
// completed), 2 usage (missing command/required option), 3 invalid option
// value. Option values are validated up front, before any store or graph
// I/O, so a typo fails in milliseconds with a pointed message instead of
// silently running with a default.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "husg/husg.hpp"
#include "io/backend/io_backend.hpp"

namespace husg {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: husg_cli "
      "<generate|build|info|verify|run|serve|inspect-bundle> [options]\n"
      "  global   [--log-level quiet|warn|info|debug]\n"
      "  generate --type rmat|er|web|chain|grid --scale N [--degree D]\n"
      "           [--seed S] [--weighted] --out FILE\n"
      "  build    --graph FILE --store DIR [--partitions P]\n"
      "           [--scheme vertices|degree] [--symmetrize] [--external]\n"
      "           [--block-codec none|delta-varint] [--compress]\n"
      "           [--no-skip-filters] [--io-backend sync|uring|auto]\n"
      "           [--queue-depth N] [--direct]\n"
      "  info     --store DIR\n"
      "  verify   --store DIR     (recompute and check file checksums)\n"
      "  run      --store DIR --algo "
      "bfs|wcc|sssp|pagerank|prdelta|spmv|kcore\n"
      "           [--source V] [--mode hybrid|rop|cop] [--threads T]\n"
      "           [--device hdd|ssd|nvme] [--seek-scale F] [--iters K]\n"
      "           [--alpha A] [--sync jacobi|async] [--out FILE] [--trace]\n"
      "           [--cache-budget BYTES] [--cache-fraction F]\n"
      "           [--no-cache-fill-rop] [--skip-filter]\n"
      "           [--block-codec none|delta-varint]\n"
      "           [--predictor paper|exact|cache-aware]\n"
      "           [--trace-out FILE] [--metrics-out FILE]\n"
      "           [--heatmap-out FILE] [--iotrace-out FILE] [--io-timing]\n"
      "           [--profile-out FILE] [--profile-hz N] [--lock-profile]\n"
      "           [--io-backend sync|uring|auto] [--queue-depth N]\n"
      "           [--direct] [--admin-port N] [--calibrate off|observe|apply]\n"
      "  serve    --store DIR --jobs FILE [--max-concurrent N] [--queue N]\n"
      "           [--threads-per-job T] [--memory-budget BYTES]\n"
      "           [--cache-budget BYTES] [--cache-fraction F]\n"
      "           [--device hdd|ssd|nvme] [--seek-scale F] [--alpha A]\n"
      "           [--skip-filter] [--block-codec none|delta-varint]\n"
      "           [--predictor paper|exact|cache-aware] [--report FILE]\n"
      "           [--trace-out FILE] [--metrics-out FILE]\n"
      "           [--heatmap-out FILE] [--iotrace-out FILE] [--io-timing]\n"
      "           [--profile-out FILE] [--profile-hz N] [--lock-profile]\n"
      "           [--io-backend sync|uring|auto] [--queue-depth N]\n"
      "           [--direct] [--admin-port N] [--calibrate off|observe|apply]\n"
      "           [--cache-partition] [--repartition-ms N]\n"
      "           [--flight-events N] [--watchdog-ms N] [--slo-ms N]\n"
      "           [--bundle-dir DIR]\n"
      "  inspect-bundle --bundle FILE   (pretty-print a postmortem bundle)\n"
      "--io-backend selects the read path: sync (pread), uring (batched\n"
      "io_uring rings; errors out if the kernel denies it) or auto (uring\n"
      "when available, else sync — the default); --queue-depth bounds reads\n"
      "in flight per ring [1, 4096]; --direct opens data files O_DIRECT\n"
      "(falls back to buffered where the filesystem refuses).\n"
      "--trace-out writes a Chrome-trace/Perfetto JSON span timeline;\n"
      "--metrics-out writes Prometheus text exposition (and enables\n"
      "device-layer I/O latency histograms for the run); --io-timing\n"
      "enables those histograms without the file (scrape them live);\n"
      "--heatmap-out writes per-block access counters (.csv -> CSV, else\n"
      "JSON); --iotrace-out records the block I/O access stream for offline\n"
      "replay with husg_replay (miss-ratio curves, predictor what-ifs);\n"
      "--profile-out samples every thread's CPU at --profile-hz (default 97)\n"
      "and writes folded stacks (feed to flamegraph.pl or speedscope);\n"
      "--lock-profile counts contention, wait and hold time per lock site\n"
      "(husg_lock_* metrics, top offenders in postmortem bundles); any of\n"
      "--io-timing/--profile-out/--lock-profile also arms per-job CPU/wait\n"
      "attribution (serve always arms it: /cpu and the report split each\n"
      "job's wall into cpu / io-wait / lock-wait / decode / queued).\n"
      "--admin-port starts the admin HTTP server on 127.0.0.1 (0 =\n"
      "ephemeral; GET /healthz /readyz /metrics /jobs /heatmap /calibration\n"
      "/mrc /trace?ms=N /profile?ms=N /cpu /debug/bundle /loglevel,\n"
      "POST /loglevel).\n"
      "--flight-events sizes the per-thread flight-recorder rings (0\n"
      "disables); --watchdog-ms flags a running job with no heartbeat for\n"
      "that long as stalled and degrades /readyz (0 disables, default\n"
      "5000); --slo-ms adds a p95 job-wall SLO rule; --bundle-dir writes\n"
      "postmortem bundles (watchdog trips, bad job exits, crashes) there.\n"
      "--calibrate measures the device online (EWMA over sampled I/O\n"
      "latencies): observe only reports the preset-vs-measured delta,\n"
      "apply re-prices §3.4 ROP/COP decisions with the measured profile\n"
      "once it is warm; --cache-partition (serve) re-splits the shared\n"
      "cache budget across running jobs from live shadow miss-ratio\n"
      "curves every --repartition-ms (default 250).\n");
  return 2;
}

/// Exit code for a syntactically present but invalid option value; distinct
/// from usage (2) so scripts can tell "you called it wrong" from "that value
/// is out of range".
constexpr int kInvalidOption = 3;

int invalid_option(const std::string& flag, const std::string& got,
                   const char* expect) {
  std::fprintf(stderr, "invalid %s '%s': expected %s\n", flag.c_str(),
               got.c_str(), expect);
  return kInvalidOption;
}

/// Validates --io-backend / --queue-depth / --direct (shared by build, run
/// and serve). An explicit `--io-backend uring` on a kernel without io_uring
/// is an error here, up front — only `auto` is allowed to degrade silently.
/// Returns 0 or kInvalidOption.
int validate_io_flags(const Options& opts) {
  std::string backend = opts.get("io-backend", "auto");
  IoBackendKind kind;
  if (!parse_io_backend(backend, &kind)) {
    return invalid_option("--io-backend", backend, "sync|uring|auto");
  }
  if (kind == IoBackendKind::kUring && !uring_available()) {
    std::fprintf(stderr,
                 "--io-backend uring: io_uring is unavailable on this kernel "
                 "(use --io-backend auto to fall back to sync reads)\n");
    return kInvalidOption;
  }
  long long depth = opts.get_int("queue-depth", kDefaultQueueDepth);
  if (depth < 1 || depth > static_cast<long long>(kMaxQueueDepth)) {
    return invalid_option("--queue-depth", opts.get("queue-depth", ""),
                          "a depth in [1, 4096]");
  }
  return 0;
}

/// Builds the store's I/O backend configuration from validated flags.
IoBackendConfig parse_io_config(const Options& opts) {
  IoBackendConfig cfg;
  cfg.kind = IoBackendKind::kAuto;
  parse_io_backend(opts.get("io-backend", "auto"), &cfg.kind);
  cfg.queue_depth = static_cast<std::uint32_t>(
      opts.get_int("queue-depth", kDefaultQueueDepth));
  cfg.direct = opts.get_bool("direct", false);
  return cfg;
}

/// Validates the option values shared by `run` and `serve` (strings that
/// used to fall back to a default silently, plus numeric ranges). Returns 0
/// or kInvalidOption.
int validate_engine_flags(const Options& opts) {
  if (int rc = validate_io_flags(opts)) return rc;
  std::string device = opts.get("device", "ssd");
  if (device != "hdd" && device != "ssd" && device != "nvme") {
    return invalid_option("--device", device, "hdd|ssd|nvme");
  }
  double seek = opts.get_double("seek-scale", 1.0);
  if (seek <= 0) {
    return invalid_option("--seek-scale", opts.get("seek-scale", ""),
                          "a positive factor");
  }
  std::string predictor = opts.get("predictor", "exact");
  if (predictor != "paper" && predictor != "exact" &&
      predictor != "cache-aware") {
    return invalid_option("--predictor", predictor, "paper|exact|cache-aware");
  }
  double alpha = opts.get_double("alpha", 0.05);
  if (alpha < 0 || alpha > 1) {
    return invalid_option("--alpha", opts.get("alpha", ""), "a value in [0,1]");
  }
  if (opts.get_int("cache-budget", 0) < 0) {
    return invalid_option("--cache-budget", opts.get("cache-budget", ""),
                          "a non-negative byte count");
  }
  double fraction = opts.get_double("cache-fraction", 0.25);
  if (fraction <= 0 || fraction > 1) {
    return invalid_option("--cache-fraction", opts.get("cache-fraction", ""),
                          "a fraction in (0,1]");
  }
  long long admin_port = opts.get_int("admin-port", -1);
  if (admin_port < -1 || admin_port > 65535) {
    return invalid_option("--admin-port", opts.get("admin-port", ""),
                          "a port in [0, 65535] (0 = ephemeral)");
  }
  std::string codec_name = opts.get("block-codec", "");
  BlockCodecKind codec;
  if (!codec_name.empty() && !parse_block_codec(codec_name, &codec)) {
    return invalid_option("--block-codec", codec_name, "none|delta-varint");
  }
  std::string calibrate = opts.get("calibrate", "off");
  obs::CalibrationMode cal_mode;
  if (!obs::parse_calibration_mode(calibrate, cal_mode)) {
    return invalid_option("--calibrate", calibrate, "off|observe|apply");
  }
  long long hz = opts.get_int("profile-hz",
                              static_cast<long long>(obs::Profiler::kDefaultHz));
  if (hz < 1 || hz > 1000) {
    return invalid_option("--profile-hz", opts.get("profile-hz", ""),
                          "a sample rate in [1, 1000] Hz");
  }
  return 0;
}

obs::CalibrationMode parse_calibrate(const Options& opts) {
  obs::CalibrationMode mode = obs::CalibrationMode::kOff;
  obs::parse_calibration_mode(opts.get("calibrate", "off"), mode);
  return mode;
}

/// Publishes the preset-vs-calibrated audit split: the same run's decisions
/// re-priced under both profiles against observed wall time. Prints the
/// summary so `--calibrate observe` reports the delta without a scrape.
void report_calibration_split(const RunStats& stats, const EngineOptions& eo,
                              bool to_registry) {
  const obs::DeviceCalibrator& cal = obs::DeviceCalibrator::instance();
  const obs::PredictorAudit preset = obs::PredictorAudit::from_run_wall(
      stats, eo.device, eo.predictor, eo.alpha);
  const obs::PredictorAudit calibrated = obs::PredictorAudit::from_run_wall(
      stats, cal.calibrated(eo.device), eo.predictor, eo.alpha);
  const obs::AuditSummary sp = preset.summarize();
  const obs::AuditSummary sc = calibrated.summarize();
  std::printf("calibration: %s, %llu rand + %llu seq samples; wall-audit "
              "mean rel-error preset=%.3f calibrated=%.3f (%zu decisions)\n",
              cal.warm() ? "warm" : "cold",
              static_cast<unsigned long long>(cal.snapshot().rand_samples),
              static_cast<unsigned long long>(cal.snapshot().seq_samples),
              sp.mean_rel_error, sc.mean_rel_error, sp.evaluated);
  if (!to_registry) return;
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("husg_calibration_audit_preset_rel_error",
            "Mean wall-audit relative error under the preset device profile")
      .set(sp.mean_rel_error);
  reg.gauge("husg_calibration_audit_calibrated_rel_error",
            "Mean wall-audit relative error under the calibrated profile")
      .set(sc.mean_rel_error);
}

/// Validates the format expectations `run` and `serve` may assert against
/// the store they just opened: --block-codec must name the store's on-disk
/// codec, and --skip-filter needs the store to carry block signatures.
/// Returns 0 or kInvalidOption.
int check_store_format(const Options& opts, const StoreMeta& meta) {
  std::string codec_name = opts.get("block-codec", "");
  if (!codec_name.empty()) {
    BlockCodecKind want = BlockCodecKind::kNone;
    parse_block_codec(codec_name, &want);
    if (want != meta.codec) {
      std::fprintf(stderr,
                   "--block-codec %s does not match the store (on-disk codec "
                   "is '%s')\n",
                   codec_name.c_str(), to_string(meta.codec));
      return kInvalidOption;
    }
  }
  if (opts.get_bool("skip-filter", false) && !meta.has_skip_filters) {
    std::fprintf(stderr,
                 "--skip-filter: store carries no block signatures (rebuild "
                 "without --no-skip-filters)\n");
    return kInvalidOption;
  }
  return 0;
}

/// Starts the admin HTTP server when --admin-port was given (0 binds an
/// ephemeral port). The bound port is printed to stdout (and flushed) so
/// scripts can scrape a server started with port 0.
std::unique_ptr<obs::AdminServer> maybe_start_admin(const Options& opts) {
  long long port = opts.get_int("admin-port", -1);
  if (port < 0) return nullptr;
  obs::AdminOptions ao;
  ao.port = static_cast<std::uint16_t>(port);
  auto admin =
      std::make_unique<obs::AdminServer>(ao, obs::Registry::global());
  return admin;
}

void announce_admin(const obs::AdminServer& admin) {
  std::printf("admin server listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(admin.port()));
  std::fflush(stdout);
}

/// Arms the span tracer, I/O latency timing, the block heatmap, the
/// sampling CPU profiler, lock-contention accounting, and per-job CPU/wait
/// attribution per the --trace-out / --metrics-out / --io-timing /
/// --heatmap-out / --profile-out / --profile-hz / --lock-profile flags;
/// exports the files when the command finishes. The metrics side expects
/// the caller to have publish()ed its ledgers into the global registry
/// before finish(). The heatmap needs the store's partition count, so it is
/// armed separately via arm_heatmap() once the store is open.
class Telemetry {
 public:
  explicit Telemetry(const Options& opts)
      : trace_out_(opts.get("trace-out", "")),
        metrics_out_(opts.get("metrics-out", "")),
        heatmap_out_(opts.get("heatmap-out", "")),
        iotrace_out_(opts.get("iotrace-out", "")),
        profile_out_(opts.get("profile-out", "")),
        profile_hz_(static_cast<std::uint32_t>(opts.get_int(
            "profile-hz", static_cast<long long>(obs::Profiler::kDefaultHz)))),
        io_timing_(opts.get_bool("io-timing", false)),
        lock_profile_(opts.get_bool("lock-profile", false)) {
    if (!trace_out_.empty()) obs::Tracer::instance().start();
    if (io_timing_ || !metrics_out_.empty()) obs::set_io_timing(true);
    if (!profile_out_.empty()) obs::Profiler::instance().start(profile_hz_);
    if (lock_profile_) obs::set_lock_profile(true);
    // Any profiling flag implies the operator wants wall decomposed, so the
    // wait-charging side comes along (serve arms it unconditionally).
    if (io_timing_ || !profile_out_.empty() || lock_profile_) {
      arm_attribution();
    }
  }

  bool metrics_enabled() const { return !metrics_out_.empty(); }

  /// Arms per-job CPU/wait attribution (idempotent). serve calls this
  /// unconditionally — /cpu and the report always carry the breakdown.
  void arm_attribution() {
    if (!attribution_armed_) {
      obs::set_attribution(true);
      attribution_armed_ = true;
    }
  }

  /// Call after the store is open; no-op without --heatmap-out.
  void arm_heatmap(std::uint32_t p) {
    if (!heatmap_out_.empty()) obs::Heatmap::instance().start(p);
  }

  /// Call after the store is open and run parameters are final (the replay
  /// needs them in the trace header); no-op without --iotrace-out.
  void arm_iotrace(const obs::TraceRunInfo& info) {
    if (!iotrace_out_.empty()) obs::IoTrace::instance().start(iotrace_out_, info);
  }

  void finish() {
    if (!trace_out_.empty()) {
      obs::Tracer& tracer = obs::Tracer::instance();
      tracer.stop();
      std::ofstream f(trace_out_);
      tracer.write_chrome_json(f);
      std::printf("wrote %zu trace events to %s", tracer.event_count(),
                  trace_out_.c_str());
      if (tracer.dropped() > 0) {
        std::printf(" (%llu dropped; rings are bounded)",
                    static_cast<unsigned long long>(tracer.dropped()));
      }
      std::printf("\n");
      tracer.clear();
      trace_out_.clear();
    }
    if (!heatmap_out_.empty()) {
      obs::Heatmap& heat = obs::Heatmap::instance();
      heat.stop();
      std::ofstream f(heatmap_out_);
      if (heatmap_out_.ends_with(".csv")) {
        heat.write_csv(f);
      } else {
        heat.write_json(f);
      }
      std::printf("wrote block heatmap to %s\n", heatmap_out_.c_str());
      heatmap_out_.clear();
    }
    if (!iotrace_out_.empty()) {
      obs::IoTrace& iotrace = obs::IoTrace::instance();
      iotrace.stop();
      std::printf("wrote %llu iotrace events to %s",
                  static_cast<unsigned long long>(iotrace.events_recorded()),
                  iotrace_out_.c_str());
      if (iotrace.dropped() > 0) {
        std::printf(" (%llu dropped)",
                    static_cast<unsigned long long>(iotrace.dropped()));
      }
      std::printf(" — replay with: husg_replay --trace %s --check --curve\n",
                  iotrace_out_.c_str());
      iotrace_out_.clear();
    }
    if (!profile_out_.empty()) {
      obs::Profiler& prof = obs::Profiler::instance();
      prof.stop();
      std::ofstream f(profile_out_);
      prof.write_folded(f);
      std::printf("wrote %llu profile samples (%zu threads, %u Hz) to %s",
                  static_cast<unsigned long long>(prof.samples()),
                  prof.thread_count(), prof.hz(), profile_out_.c_str());
      if (prof.dropped() > 0) {
        std::printf(" (%llu overwritten; rings are bounded)",
                    static_cast<unsigned long long>(prof.dropped()));
      }
      std::printf("\n");
      // No clear(): the metrics export below reads the sample counters, and
      // the process exits after finish().
      profile_out_.clear();
    }
    if (io_timing_ || !metrics_out_.empty()) obs::set_io_timing(false);
    if (!metrics_out_.empty()) {
      obs::Registry& reg = obs::Registry::global();
      // Always-present §15 families (zeros when the flags never armed).
      obs::Profiler::instance().publish(reg);
      obs::LockRegistry::instance().publish(reg);
      std::ofstream f(metrics_out_);
      reg.write_prometheus(f);
      std::printf("wrote metrics to %s\n", metrics_out_.c_str());
      metrics_out_.clear();
    }
    if (lock_profile_) obs::set_lock_profile(false);
    if (attribution_armed_) {
      obs::set_attribution(false);
      attribution_armed_ = false;
    }
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  std::string heatmap_out_;
  std::string iotrace_out_;
  std::string profile_out_;
  std::uint32_t profile_hz_ = obs::Profiler::kDefaultHz;
  bool io_timing_ = false;
  bool lock_profile_ = false;
  bool attribution_armed_ = false;
};

/// Trace-header snapshot of a standalone run's parameters. `store` supplies
/// the RESOLVED backend kind (auto has already picked sync or uring).
obs::TraceRunInfo iotrace_info(const StoreMeta& meta, const EngineOptions& eo,
                               const DualBlockStore& store) {
  obs::TraceRunInfo info;
  info.p = meta.p();
  info.backend = static_cast<std::uint8_t>(store.io_backend().kind());
  info.budget_bytes = eo.cache_budget_bytes;
  info.max_block_fraction = eo.cache_max_block_fraction;
  info.fill_rop = eo.cache_fill_rop;
  info.flavor = static_cast<std::uint8_t>(eo.predictor);
  info.granularity = static_cast<std::uint8_t>(eo.granularity);
  info.alpha = eo.alpha;
  info.seq_read_bw = eo.device.seq_read_bw;
  info.rand_read_bw = eo.device.rand_read_bw;
  info.write_bw = eo.device.write_bw;
  info.seek_seconds = eo.device.seek_seconds;
  info.num_vertices = meta.num_vertices;
  info.num_edges = meta.num_edges;
  info.edge_bytes = meta.edge_record_bytes();
  return info;
}

EdgeList load_graph(const std::string& path) {
  if (path.size() > 4 && (path.ends_with(".txt") || path.ends_with(".el"))) {
    return load_text_edges(path);
  }
  return load_binary_edges(path);
}

void save_graph(const EdgeList& g, const std::string& path) {
  if (path.ends_with(".txt") || path.ends_with(".el")) {
    save_text_edges(g, path);
  } else {
    save_binary_edges(g, path);
  }
}

int cmd_generate(const Options& opts) {
  std::string type = opts.get("type", "rmat");
  unsigned scale = static_cast<unsigned>(opts.get_int("scale", 16));
  double degree = opts.get_double("degree", 16.0);
  std::uint64_t seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  std::string out = opts.get("out", "");
  if (out.empty()) return usage();

  EdgeList g(1, {});
  if (type == "rmat") {
    g = gen::rmat(scale, degree, seed);
  } else if (type == "er") {
    VertexId n = VertexId{1} << scale;
    g = gen::erdos_renyi(n, static_cast<EdgeId>(degree * n), seed);
  } else if (type == "web") {
    g = gen::webgraph(scale, degree, seed);
  } else if (type == "chain") {
    g = gen::chain(VertexId{1} << scale);
  } else if (type == "grid") {
    VertexId side = VertexId{1} << (scale / 2);
    g = gen::grid2d(side, side);
  } else {
    return invalid_option("--type", type, "rmat|er|web|chain|grid");
  }
  if (opts.get_bool("weighted", false)) {
    g = gen::with_random_weights(g, seed ^ 0xBEEF);
  }
  save_graph(g, out);
  std::printf("wrote %s: %u vertices, %llu edges%s\n", out.c_str(),
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              g.weighted() ? " (weighted)" : "");
  return 0;
}

int cmd_build(const Options& opts) {
  std::string graph = opts.get("graph", "");
  std::string store_dir = opts.get("store", "");
  if (graph.empty() || store_dir.empty()) return usage();
  if (int rc = validate_io_flags(opts)) return rc;
  EdgeList g = load_graph(graph);
  if (opts.get_bool("symmetrize", false)) g = g.symmetrized();
  StoreOptions so;
  so.num_partitions =
      static_cast<std::uint32_t>(opts.get_int("partitions", 8));
  so.scheme = opts.get("scheme", "vertices") == "degree"
                  ? PartitionScheme::kEqualDegree
                  : PartitionScheme::kEqualVertices;
  if (opts.get_bool("external", false)) {
    so.build_mode = BuildMode::kExternal;
  }
  // --compress is the historical alias for the delta-varint codec; an
  // explicit --block-codec wins when both are given.
  std::string codec_name = opts.get(
      "block-codec", opts.get_bool("compress", false) ? "delta-varint" : "none");
  if (!parse_block_codec(codec_name, &so.codec)) {
    return invalid_option("--block-codec", codec_name, "none|delta-varint");
  }
  so.skip_filters = !opts.get_bool("no-skip-filters", false);
  Timer timer;
  DualBlockStore store =
      DualBlockStore::build(g, store_dir, so, parse_io_config(opts));
  std::printf("built dual-block store at %s in %s\n", store_dir.c_str(),
              human_seconds(timer.seconds()).c_str());
  std::printf("  |V|=%llu |E|=%llu P=%u record=%uB\n",
              static_cast<unsigned long long>(store.meta().num_vertices),
              static_cast<unsigned long long>(store.meta().num_edges),
              store.meta().p(), store.meta().edge_record_bytes());
  return 0;
}

int cmd_verify(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  if (store_dir.empty()) return usage();
  DualBlockStore store = DualBlockStore::open(store_dir);
  Timer timer;
  store.verify();  // throws on mismatch -> error path in main()
  std::printf("store %s verified OK (%llu edges, %s)\n", store_dir.c_str(),
              static_cast<unsigned long long>(store.meta().num_edges),
              human_seconds(timer.seconds()).c_str());
  return 0;
}

int cmd_info(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  if (store_dir.empty()) return usage();
  DualBlockStore store = DualBlockStore::open(store_dir);
  const StoreMeta& m = store.meta();
  std::printf("dual-block store %s\n", store_dir.c_str());
  std::printf("  vertices:   %llu\n",
              static_cast<unsigned long long>(m.num_vertices));
  std::printf("  edges:      %llu (%s)\n",
              static_cast<unsigned long long>(m.num_edges),
              m.weighted ? "weighted, 8B records" : "unweighted, 4B records");
  std::printf("  partitions: %u (%zu edge blocks per side)\n", m.p(),
              static_cast<std::size_t>(m.p()) * m.p());
  std::printf("  codec:      %s%s\n", to_string(m.codec),
              m.has_skip_filters ? " (+block signatures)" : "");
  for (std::uint32_t i = 0; i < m.p(); ++i) {
    std::uint64_t row_edges = 0, col_edges = 0;
    for (std::uint32_t j = 0; j < m.p(); ++j) {
      row_edges += m.out_block(i, j).edge_count;
      col_edges += m.in_block(j, i).edge_count;
    }
    std::printf("  interval %2u: [%u, %u)  out-edges %llu  in-edges %llu\n",
                i, m.interval_begin(i), m.interval_end(i),
                static_cast<unsigned long long>(row_edges),
                static_cast<unsigned long long>(col_edges));
  }
  return 0;
}

DeviceProfile parse_device(const Options& opts) {
  std::string name = opts.get("device", "ssd");
  DeviceProfile dev = name == "hdd"    ? DeviceProfile::hdd7200()
                      : name == "nvme" ? DeviceProfile::nvme_ssd()
                                       : DeviceProfile::sata_ssd();
  double scale = opts.get_double("seek-scale", 1.0);
  if (scale != 1.0) dev = dev.with_seek_scale(scale);
  return dev;
}

template <class V, class Fmt>
void maybe_dump(const Options& opts, const std::vector<V>& values, Fmt&& fmt) {
  std::string out = opts.get("out", "");
  if (out.empty()) return;
  std::ofstream f(out);
  for (VertexId v = 0; v < values.size(); ++v) {
    f << v << ' ' << fmt(values[v]) << '\n';
  }
  std::printf("wrote %zu values to %s\n", values.size(), out.c_str());
}

void print_trace(const RunStats& stats, bool trace) {
  std::printf("%s\n", stats.summary().c_str());
  if (!trace) return;
  for (const auto& it : stats.iterations) {
    std::printf("  iter %3d: active=%llu model=%s io=%s modeled=%s",
                it.iteration,
                static_cast<unsigned long long>(it.active_vertices),
                it.any_rop() ? (it.any_cop() ? "mixed" : "ROP") : "COP",
                human_bytes(it.io.total_bytes()).c_str(),
                human_seconds(it.modeled_seconds()).c_str());
    if (it.cache.lookups() > 0) {
      std::printf(" cache-hit=%.0f%% saved=%s", 100.0 * it.cache.hit_rate(),
                  human_bytes(it.cache.bytes_saved).c_str());
    }
    std::printf("\n");
  }
}

PredictorFlavor parse_predictor(const Options& opts) {
  std::string predictor = opts.get("predictor", "exact");
  if (predictor == "paper") return PredictorFlavor::kPaper;
  if (predictor == "cache-aware") return PredictorFlavor::kCacheAware;
  return PredictorFlavor::kDeviceExact;
}

int cmd_run(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  std::string algo = opts.get("algo", "");
  if (store_dir.empty() || algo.empty()) return usage();
  // Validate every option value before touching the store (exit 3 with a
  // pointed message; see the exit-code contract at the top of this file).
  if (algo != "bfs" && algo != "wcc" && algo != "sssp" && algo != "pagerank" &&
      algo != "prdelta" && algo != "kcore" && algo != "spmv") {
    return invalid_option("--algo", algo,
                          "bfs|wcc|sssp|pagerank|prdelta|spmv|kcore");
  }
  std::string mode = opts.get("mode", "hybrid");
  if (mode != "hybrid" && mode != "rop" && mode != "cop") {
    return invalid_option("--mode", mode, "hybrid|rop|cop");
  }
  std::string sync = opts.get("sync", "jacobi");
  if (sync != "jacobi" && sync != "async") {
    return invalid_option("--sync", sync, "jacobi|async");
  }
  if (opts.get_int("threads", 4) <= 0) {
    return invalid_option("--threads", opts.get("threads", ""),
                          "a positive thread count");
  }
  if (opts.get_int("iters", 0) < 0) {
    return invalid_option("--iters", opts.get("iters", ""),
                          "a non-negative count");
  }
  if (opts.get_int("source", 0) < 0) {
    return invalid_option("--source", opts.get("source", ""),
                          "a non-negative vertex id");
  }
  if (int rc = validate_engine_flags(opts)) return rc;
  DualBlockStore store =
      DualBlockStore::open(store_dir, parse_io_config(opts));
  if (int rc = check_store_format(opts, store.meta())) return rc;

  EngineOptions eo;
  eo.mode = mode == "rop"   ? UpdateMode::kRop
            : mode == "cop" ? UpdateMode::kCop
                            : UpdateMode::kHybrid;
  eo.sync = sync == "async" ? SyncMode::kPaperAsync : SyncMode::kJacobi;
  eo.threads = static_cast<std::size_t>(opts.get_int("threads", 4));
  eo.device = parse_device(opts);
  eo.alpha = opts.get_double("alpha", 0.05);
  eo.cache_budget_bytes =
      static_cast<std::uint64_t>(opts.get_int("cache-budget", 0));
  eo.cache_max_block_fraction = opts.get_double("cache-fraction", 0.25);
  eo.cache_fill_rop = !opts.get_bool("no-cache-fill-rop", false);
  eo.skip_filter = opts.get_bool("skip-filter", false);
  eo.predictor = parse_predictor(opts);
  eo.calibrate = parse_calibrate(opts);
  if (eo.calibrate != obs::CalibrationMode::kOff) {
    obs::DeviceCalibrator::instance().arm(eo.device, eo.calibrate);
  }
  int iters = static_cast<int>(opts.get_int("iters", 0));
  bool trace = opts.get_bool("trace", false);
  VertexId source = static_cast<VertexId>(opts.get_int("source", 0));

  Telemetry telemetry(opts);
  telemetry.arm_heatmap(store.meta().p());
  telemetry.arm_iotrace(iotrace_info(store.meta(), eo, store));
  std::unique_ptr<obs::AdminServer> admin = maybe_start_admin(opts);
  if (admin) {
    admin->start();
    announce_admin(*admin);
  }
  RunStats last_stats;
  Engine engine(store, eo);
  auto single = [&] {
    return Frontier::single(store.meta(), source, store.out_degrees());
  };
  auto all = [&] {
    return Frontier::all(store.meta(), store.out_degrees());
  };

  if (algo == "bfs") {
    BfsProgram p{.source = source};
    auto r = engine.run(p, single());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values, [](std::uint32_t v) { return v; });
  } else if (algo == "wcc") {
    WccProgram p;
    auto r = engine.run(p, all());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values, [](VertexId v) { return v; });
  } else if (algo == "sssp") {
    SsspProgram p{.source = source};
    auto r = engine.run(p, single());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else if (algo == "pagerank") {
    Engine pr_engine(store, [&] {
      EngineOptions o = eo;
      o.max_iterations = iters > 0 ? iters : 5;
      return o;
    }());
    PageRankProgram p;
    auto r = pr_engine.run(p, all());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else if (algo == "prdelta") {
    PageRankDeltaProgram p;
    auto r = engine.run(p, all());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values,
               [](const PageRankDeltaValue& v) { return v.rank; });
  } else if (algo == "kcore") {
    std::uint32_t k = static_cast<std::uint32_t>(opts.get_int("k", 3));
    KCoreProgram p;
    p.k = k;
    auto r = engine.run(p, kcore_initial_frontier(store, k));
    std::uint64_t survivors = 0;
    for (const auto& val : r.values) survivors += val.removed == 0 ? 1 : 0;
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    std::printf("%u-core size: %llu of %llu vertices (run on a symmetrized "
                "store for the undirected k-core)\n",
                k, static_cast<unsigned long long>(survivors),
                static_cast<unsigned long long>(store.meta().num_vertices));
    maybe_dump(opts, r.values,
               [](const KCoreValue& v) { return v.removed == 0 ? 1 : 0; });
  } else if (algo == "spmv") {
    Engine spmv_engine(store, [&] {
      EngineOptions o = eo;
      o.max_iterations = iters > 0 ? iters : 1;
      return o;
    }());
    SpmvProgram p;
    auto r = spmv_engine.run(p, all());
    print_trace(r.stats, trace);
    last_stats = std::move(r.stats);
    maybe_dump(opts, r.values, [](float v) { return v; });
  } else {
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    return 2;
  }
  if (eo.calibrate != obs::CalibrationMode::kOff) {
    report_calibration_split(last_stats, eo, telemetry.metrics_enabled());
  }
  // Decode-term audit (§15): the codec model's T_decode vs the decode CPU
  // that attribution measured. Only evaluates when attribution was armed
  // (--io-timing / --profile-out / --lock-profile) and blocks were decoded;
  // decode_bps is identical across this command's engines (same store +
  // device options), so the plain `engine` serves every algo branch.
  const obs::DecodeAudit decode_audit =
      obs::audit_decode(last_stats.codec, engine.decode_bps());
  if (decode_audit.evaluated) {
    std::printf("decode audit: predicted %.4fs vs measured %.4fs decode CPU "
                "(rel error %.2f)\n",
                decode_audit.predicted_seconds, decode_audit.measured_seconds,
                decode_audit.rel_error);
  }
  if (telemetry.metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    last_stats.publish(reg);
    last_stats.cache.publish(reg);
    eo.device.publish(reg);
    obs::PredictorAudit::from_run(last_stats, eo.device).publish(reg);
    obs::publish(decode_audit, reg);
    if (eo.calibrate != obs::CalibrationMode::kOff) {
      obs::DeviceCalibrator::instance().publish(reg);
    }
  }
  telemetry.finish();
  if (eo.calibrate != obs::CalibrationMode::kOff) {
    obs::DeviceCalibrator::instance().disarm();
  }
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Per-job + service-level JSON report of a `serve` batch. With calibration
/// or partitioning enabled the report grows a "calibration" / "mrc" object
/// (absent otherwise, keeping default-run reports unchanged).
void write_serve_report(const std::string& path, const std::string& store_dir,
                        const std::vector<JobSpec>& jobs,
                        const std::vector<JobTicket>& tickets,
                        const std::vector<JobResult>& results,
                        const ServiceStats& st, const GraphService& service) {
  std::ofstream f(path);
  f << "{\n  \"store\": \"" << json_escape(store_dir) << "\",\n"
    << "  \"jobs\": [\n";
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const JobTicket& t = tickets[k];
    f << "    {\"name\": \"" << json_escape(jobs[k].name) << "\", \"algo\": \""
      << to_string(jobs[k].algo) << "\", \"accepted\": "
      << (t.accepted ? "true" : "false");
    if (!t.accepted) {
      f << ", \"reject\": \"" << to_string(t.reject) << "\", \"message\": \""
        << json_escape(t.message) << "\"}";
    } else {
      const JobResult& r = results[k];
      f << ", \"id\": " << r.id << ", \"status\": \"" << to_string(r.status)
        << "\", \"error\": \"" << json_escape(r.error) << "\""
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"iterations\": " << r.stats.iterations_run()
        << ", \"edges_processed\": " << r.stats.edges_processed
        << ", \"read_bytes\": " << r.stats.total_io.total_read_bytes()
        << ", \"write_bytes\": " << r.stats.total_io.write_bytes
        << ", \"cache_hits\": " << r.stats.cache.hits
        << ", \"cache_misses\": " << r.stats.cache.misses
        << ", \"cache_bytes_saved\": " << r.stats.cache.bytes_saved;
      // §15 wall decomposition: cpu + io_wait + lock_wait + other == wall,
      // using the critical-path (root-thread) lane — helper-thread charges
      // overlap the body thread's wall, so only the root lane sums to it.
      // total_cpu_seconds is the job's full CPU cost across every thread;
      // decode is a subset of that total, queued precedes the wall clock.
      const obs::JobUsageSnapshot& u = r.usage;
      const double cpu_s = static_cast<double>(u.root_cpu_ns) / 1e9;
      const double io_s = static_cast<double>(u.root_io_wait_ns) / 1e9;
      const double lock_s = static_cast<double>(u.root_lock_wait_ns) / 1e9;
      // Capped at the unattributed residual: run-queue wait overlaps the
      // wakeup tail of every charged io/lock wall window (see cpu_json).
      const double sched_s =
          std::min(static_cast<double>(u.root_sched_wait_ns) / 1e9,
                   std::max(0.0, r.wall_seconds - cpu_s - io_s - lock_s));
      f << ", \"cpu_seconds\": " << cpu_s << ", \"io_wait_seconds\": " << io_s
        << ", \"lock_wait_seconds\": " << lock_s
        << ", \"sched_wait_seconds\": " << sched_s
        << ", \"total_cpu_seconds\": " << static_cast<double>(u.cpu_ns) / 1e9
        << ", \"decode_seconds\": " << static_cast<double>(u.decode_ns) / 1e9
        << ", \"queued_seconds\": " << static_cast<double>(u.queued_ns) / 1e9
        << ", \"other_seconds\": "
        << std::max(0.0, r.wall_seconds - cpu_s - io_s - lock_s - sched_s)
        << "}";
    }
    f << (k + 1 < jobs.size() ? ",\n" : "\n");
  }
  f << "  ],\n  \"service\": {"
    << "\"submitted\": " << st.submitted << ", \"accepted\": " << st.accepted
    << ", \"rejected_queue_full\": " << st.rejected_queue_full
    << ", \"rejected_memory\": " << st.rejected_memory
    << ", \"rejected_shutdown\": " << st.rejected_shutdown
    << ", \"completed\": " << st.completed << ", \"failed\": " << st.failed
    << ", \"cancelled\": " << st.cancelled
    << ", \"timed_out\": " << st.timed_out
    << ", \"edges_processed\": " << st.edges_processed
    << ", \"read_bytes\": " << st.io.total_read_bytes()
    << ", \"peak_reserved_bytes\": " << st.peak_reserved_bytes
    << ", \"cache_hits\": " << st.cache.hits
    << ", \"cache_misses\": " << st.cache.misses
    << ", \"cache_cross_job_hits\": " << st.cache.cross_job_hits
    << ", \"cache_bytes_saved\": " << st.cache.bytes_saved
    << ", \"job_wall\": {"
    << "\"count\": " << st.job_wall.count
    << ", \"min_seconds\": " << st.job_wall.min_seconds
    << ", \"mean_seconds\": " << st.job_wall.mean_seconds
    << ", \"max_seconds\": " << st.job_wall.max_seconds
    << ", \"p50_seconds\": " << st.job_wall.p50_seconds
    << ", \"p95_seconds\": " << st.job_wall.p95_seconds
    << ", \"p99_seconds\": " << st.job_wall.p99_seconds << "}"
    << ", \"cpu\": {\"cpu_seconds\": "
    << static_cast<double>(st.usage_total.cpu_ns) / 1e9
    << ", \"io_wait_seconds\": "
    << static_cast<double>(st.usage_total.io_wait_ns) / 1e9
    << ", \"lock_wait_seconds\": "
    << static_cast<double>(st.usage_total.lock_wait_ns) / 1e9
    << ", \"decode_seconds\": "
    << static_cast<double>(st.usage_total.decode_ns) / 1e9
    << ", \"queued_seconds\": "
    << static_cast<double>(st.usage_total.queued_ns) / 1e9 << "}}";
  if (service.options().calibrate != obs::CalibrationMode::kOff) {
    f << ",\n  \"calibration\": ";
    obs::DeviceCalibrator::instance().write_json(f);
  }
  if (service.partition() != nullptr) {
    f << ",\n  \"mrc\": ";
    service.partition()->write_json(f);
  }
  f << "\n}\n";
}

// -- inspect-bundle ---------------------------------------------------------

/// Missing members read as 0 / "" — bundles evolve, the inspector shouldn't
/// hard-fail on a field an older (or crash-path) bundle lacks.
double jnum(const JsonValue* v) { return v != nullptr ? v->num : 0; }
std::string jstr(const JsonValue* v) {
  return v != nullptr ? v->str : std::string();
}

/// Offline pretty-printer for a postmortem bundle (DESIGN.md §14): the
/// headline incident, active anomalies, the job table with each job's last
/// progress tick, and the flight-recorder totals. The full event stream and
/// metrics text stay in the file; this is the two-screen triage view.
int cmd_inspect_bundle(const Options& opts) {
  std::string path = opts.get("bundle", "");
  if (path.empty()) return usage();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue root = parse_json(buf.str(), path);

  std::printf("bundle %s\n", path.c_str());
  std::printf("  version: %lld\n",
              static_cast<long long>(jnum(root.get("bundle_version"))));
  std::printf("  reason:  %s\n", jstr(root.get("reason")).c_str());

  if (const JsonValue* store = root.get("store")) {
    std::printf("  store:   %s  (%lld vertices, %lld edges, p=%lld)\n",
                jstr(store->get("dir")).c_str(),
                static_cast<long long>(jnum(store->get("vertices"))),
                static_cast<long long>(jnum(store->get("edges"))),
                static_cast<long long>(jnum(store->get("partitions"))));
  }
  if (const JsonValue* inc = root.get("incident")) {
    std::printf("incident: job %llu '%s' %s  wall=%.3fs iter=%lld\n",
                static_cast<unsigned long long>(jnum(inc->get("id"))),
                jstr(inc->get("name")).c_str(),
                jstr(inc->get("status")).c_str(), jnum(inc->get("wall_seconds")),
                static_cast<long long>(jnum(inc->get("iteration"))));
    const std::string err = jstr(inc->get("error"));
    if (!err.empty()) std::printf("  error:   %s\n", err.c_str());
    const double age = jnum(inc->get("last_tick_age_seconds"));
    if (age >= 0) std::printf("  last heartbeat: %.2fs before exit\n", age);
  }
  if (const JsonValue* anomalies = root.get("anomalies")) {
    std::printf("anomalies: %zu active\n", anomalies->arr.size());
    for (const JsonValue& a : anomalies->arr) {
      std::printf("  - %-18s job=%llu  %s\n", jstr(a.get("kind")).c_str(),
                  static_cast<unsigned long long>(jnum(a.get("job"))),
                  jstr(a.get("detail")).c_str());
    }
  }
  if (const JsonValue* jobs = root.get("jobs")) {
    if (const JsonValue* list = jobs->get("jobs")) {
      std::printf("jobs: %zu live\n", list->arr.size());
      for (const JsonValue& j : list->arr) {
        std::printf("  - job %llu '%s' %s",
                    static_cast<unsigned long long>(jnum(j.get("id"))),
                    jstr(j.get("name")).c_str(),
                    jstr(j.get("status")).c_str());
        if (jnum(j.get("iteration")) > 0 || j.get("last_tick_age_seconds")) {
          std::printf("  iter=%lld edges=%lld io=%s",
                      static_cast<long long>(jnum(j.get("iteration"))),
                      static_cast<long long>(jnum(j.get("edges"))),
                      human_bytes(static_cast<std::uint64_t>(
                                      jnum(j.get("io_bytes"))))
                          .c_str());
          const double age = jnum(j.get("last_tick_age_seconds"));
          if (age >= 0) std::printf("  last-tick=%.2fs ago", age);
        }
        std::printf("\n");
      }
    }
  }
  if (const JsonValue* service = root.get("service")) {
    std::printf("service: %lld submitted, %lld completed, %lld failed, "
                "%lld cancelled, %lld timed out\n",
                static_cast<long long>(jnum(service->get("submitted"))),
                static_cast<long long>(jnum(service->get("completed"))),
                static_cast<long long>(jnum(service->get("failed"))),
                static_cast<long long>(jnum(service->get("cancelled"))),
                static_cast<long long>(jnum(service->get("timed_out"))));
  }
  if (const JsonValue* flight = root.get("flight")) {
    const JsonValue* events = root.get("flight_events");
    std::printf("flight: %lld events recorded, %lld dropped, %zu in bundle\n",
                static_cast<long long>(jnum(flight->get("recorded"))),
                static_cast<long long>(jnum(flight->get("dropped"))),
                events != nullptr ? events->arr.size() : 0);
    if (events != nullptr && !events->arr.empty()) {
      // The tail is where the story is; show the last few events.
      const std::size_t n = std::min<std::size_t>(events->arr.size(), 8);
      std::printf("  last %zu events:\n", n);
      for (std::size_t k = events->arr.size() - n; k < events->arr.size();
           ++k) {
        const JsonValue& e = events->arr[k];
        std::printf("    seq=%-8llu %-14s job=%llu a=%lld v1=%lld v2=%lld "
                    "v3=%lld\n",
                    static_cast<unsigned long long>(jnum(e.get("seq"))),
                    jstr(e.get("type")).c_str(),
                    static_cast<unsigned long long>(jnum(e.get("job"))),
                    static_cast<long long>(jnum(e.get("a"))),
                    static_cast<long long>(jnum(e.get("v1"))),
                    static_cast<long long>(jnum(e.get("v2"))),
                    static_cast<long long>(jnum(e.get("v3"))));
      }
    }
  }
  if (root.get("calibration") != nullptr) {
    std::printf("calibration: present (see file)\n");
  }
  if (root.get("mrc") != nullptr) std::printf("mrc: present (see file)\n");
  return 0;
}

int cmd_serve(const Options& opts) {
  std::string store_dir = opts.get("store", "");
  std::string jobs_path = opts.get("jobs", "");
  if (store_dir.empty() || jobs_path.empty()) return usage();
  if (opts.get_int("max-concurrent", 2) <= 0) {
    return invalid_option("--max-concurrent", opts.get("max-concurrent", ""),
                          "a positive job count");
  }
  if (opts.get_int("queue", 16) <= 0) {
    return invalid_option("--queue", opts.get("queue", ""),
                          "a positive queue length");
  }
  if (opts.get_int("threads-per-job", 2) <= 0) {
    return invalid_option("--threads-per-job", opts.get("threads-per-job", ""),
                          "a positive thread count");
  }
  if (opts.get_int("memory-budget", 0) < 0) {
    return invalid_option("--memory-budget", opts.get("memory-budget", ""),
                          "a non-negative byte count");
  }
  if (opts.get_int("repartition-ms", 250) <= 0) {
    return invalid_option("--repartition-ms", opts.get("repartition-ms", ""),
                          "a positive interval in milliseconds");
  }
  if (opts.get_int("flight-events", 4096) < 0) {
    return invalid_option("--flight-events", opts.get("flight-events", ""),
                          "a non-negative per-thread event count (0 disables)");
  }
  if (opts.get_int("watchdog-ms", 5000) < 0) {
    return invalid_option("--watchdog-ms", opts.get("watchdog-ms", ""),
                          "a non-negative stall threshold in milliseconds "
                          "(0 disables)");
  }
  if (opts.get_int("slo-ms", 0) < 0) {
    return invalid_option("--slo-ms", opts.get("slo-ms", ""),
                          "a non-negative p95 target in milliseconds "
                          "(0 disables)");
  }
  if (int rc = validate_engine_flags(opts)) return rc;

  // Jobs are validated before the store is opened: a bad jobs.json fails
  // fast (main() maps DataError to exit 1).
  std::vector<JobSpec> jobs = load_jobs_file(jobs_path);
  if (jobs.empty()) {
    std::fprintf(stderr, "no jobs in %s\n", jobs_path.c_str());
    return kInvalidOption;
  }

  DualBlockStore store =
      DualBlockStore::open(store_dir, parse_io_config(opts));
  if (int rc = check_store_format(opts, store.meta())) return rc;
  ServiceOptions so;
  so.max_concurrent_jobs =
      static_cast<std::size_t>(opts.get_int("max-concurrent", 2));
  so.max_queued_jobs = static_cast<std::size_t>(opts.get_int("queue", 16));
  so.threads_per_job =
      static_cast<std::size_t>(opts.get_int("threads-per-job", 2));
  if (opts.get_int("memory-budget", 0) > 0) {
    so.memory_budget_bytes =
        static_cast<std::uint64_t>(opts.get_int("memory-budget", 0));
  }
  so.cache_budget_bytes = static_cast<std::uint64_t>(
      opts.get_int("cache-budget", 64ll << 20));
  so.cache_max_block_fraction = opts.get_double("cache-fraction", 0.25);
  so.device = parse_device(opts);
  so.alpha = opts.get_double("alpha", 0.05);
  so.predictor = parse_predictor(opts);
  so.skip_filter = opts.get_bool("skip-filter", false);
  so.calibrate = parse_calibrate(opts);
  so.cache_partition = opts.get_bool("cache-partition", false);
  so.repartition_interval_ms =
      static_cast<std::uint32_t>(opts.get_int("repartition-ms", 250));
  so.flight_events = static_cast<std::size_t>(opts.get_int(
      "flight-events",
      static_cast<long long>(obs::FlightRecorder::kDefaultEventsPerThread)));
  so.watchdog_ms =
      static_cast<std::uint32_t>(opts.get_int("watchdog-ms", 5000));
  so.slo_ms = static_cast<std::uint32_t>(opts.get_int("slo-ms", 0));
  so.bundle_dir = opts.get("bundle-dir", "");
  if (!so.bundle_dir.empty()) {
    // Fatal signals dump the flight rings into a pre-opened crash bundle.
    obs::install_crash_handler(so.bundle_dir);
  }
  if (so.calibrate != obs::CalibrationMode::kOff) {
    obs::DeviceCalibrator::instance().arm(so.device, so.calibrate);
  }

  Telemetry telemetry(opts);
  // serve always decomposes each job's wall (report + /cpu), so attribution
  // is armed regardless of the profiling flags.
  telemetry.arm_attribution();
  telemetry.arm_heatmap(store.meta().p());
  {
    // Shared-cache trace: events carry per-job owner tags; jobs' engines use
    // the service defaults (global granularity).
    EngineOptions eo;
    eo.device = so.device;
    eo.predictor = so.predictor;
    eo.alpha = so.alpha;
    eo.cache_budget_bytes = so.cache_budget_bytes;
    eo.cache_max_block_fraction = so.cache_max_block_fraction;
    eo.cache_fill_rop = so.cache_fill_rop;
    telemetry.arm_iotrace(iotrace_info(store.meta(), eo, store));
  }
  GraphService service(store, so);
  // Declared after the service so hooks (which reference it) are stopped
  // first on scope exit.
  std::unique_ptr<obs::AdminServer> admin = maybe_start_admin(opts);
  if (admin) {
    admin->set_jobs(
        [&service] { return jobs_view_json(service.snapshot_jobs()); });
    if (service.watchdog() != nullptr) {
      admin->set_degraded([&service]() -> std::string {
        const obs::AnomalyWatchdog* wd = service.watchdog();
        return wd->degraded() ? wd->readyz_json() : std::string();
      });
    }
    admin->set_bundle(
        [&service] { return service.bundle_json("debug-endpoint"); });
    admin->set_cpu([&service] { return service.cpu_json(); });
    if (service.partition() != nullptr) {
      admin->set_mrc([&service] {
        std::ostringstream os;
        service.partition()->write_json(os);
        return os.str();
      });
    }
    // Point-in-time gauges refreshed per scrape. Gauges only: the
    // ServiceStats publish() counters accumulate per call and belong to the
    // end-of-batch export below.
    admin->set_pre_scrape([&service](obs::Registry& reg) {
      std::size_t pending = 0, running = 0;
      for (const JobView& v : service.snapshot_jobs()) {
        (v.status == JobStatus::kRunning ? running : pending) += 1;
      }
      reg.gauge("husg_service_jobs_pending", "Jobs queued, not yet running")
          .set(static_cast<double>(pending));
      reg.gauge("husg_service_jobs_running", "Jobs currently running")
          .set(static_cast<double>(running));
      reg.gauge("husg_service_reserved_bytes",
                "Working-set bytes reserved by running jobs")
          .set(static_cast<double>(service.reserved_bytes()));
      if (service.cache() != nullptr) {
        reg.gauge("husg_cache_resident_bytes", "Bytes resident in the cache")
            .set(static_cast<double>(service.cache()->resident_bytes()));
      }
      // All publishers here set gauges only (the pre-scrape contract).
      if (service.options().calibrate != obs::CalibrationMode::kOff) {
        obs::DeviceCalibrator::instance().publish(reg);
      }
      if (service.partition() != nullptr) service.partition()->publish(reg);
      if (service.watchdog() != nullptr) service.watchdog()->publish(reg);
      obs::FlightRecorder::instance().publish(reg);
      obs::Profiler::instance().publish(reg);
      obs::LockRegistry::instance().publish(reg);
    });
    admin->start();
    announce_admin(*admin);
  }
  std::vector<JobTicket> tickets;
  tickets.reserve(jobs.size());
  for (const JobSpec& spec : jobs) tickets.push_back(service.submit(spec));

  std::vector<JobResult> results(jobs.size());
  bool all_completed = true;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    if (!tickets[k].accepted) {
      std::printf("job %-16s REJECTED (%s): %s\n", jobs[k].name.c_str(),
                  to_string(tickets[k].reject), tickets[k].message.c_str());
      all_completed = false;
      continue;
    }
    results[k] = tickets[k].result.get();
    const JobResult& r = results[k];
    std::printf("job %-16s %-9s %s  iters=%d  io=%s", r.name.c_str(),
                to_string(r.status), human_seconds(r.wall_seconds).c_str(),
                r.stats.iterations_run(),
                human_bytes(r.stats.total_io.total_bytes()).c_str());
    if (r.stats.cache.lookups() > 0) {
      std::printf("  cache-hit=%.0f%%", 100.0 * r.stats.cache.hit_rate());
    }
    if (!r.error.empty()) std::printf("  (%s)", r.error.c_str());
    std::printf("\n");
    if (r.status != JobStatus::kCompleted) all_completed = false;
  }
  service.shutdown();

  ServiceStats st = service.stats();
  std::printf(
      "service: %llu submitted, %llu completed, %llu failed, %llu "
      "cancelled, %llu timed out, %llu rejected\n",
      static_cast<unsigned long long>(st.submitted),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(st.cancelled),
      static_cast<unsigned long long>(st.timed_out),
      static_cast<unsigned long long>(st.rejected()));
  if (st.cache.lookups() > 0) {
    std::printf("  shared cache: %.0f%% hit rate, %llu cross-job hits, %s "
                "saved\n",
                100.0 * st.cache.hit_rate(),
                static_cast<unsigned long long>(st.cache.cross_job_hits),
                human_bytes(st.cache.bytes_saved).c_str());
  }

  std::string report = opts.get("report", "");
  if (!report.empty()) {
    write_serve_report(report, store_dir, jobs, tickets, results, st, service);
    std::printf("wrote %s\n", report.c_str());
  }
  if (telemetry.metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    st.publish(reg);
    so.device.publish(reg);
    reg.gauge("husg_service_job_wall_p95_seconds",
              "95th percentile per-job wall time")
        .set(st.job_wall.p95_seconds);
    // Per-job predictor audits, aggregated into one error histogram.
    for (const JobResult& r : results) {
      if (r.status != JobStatus::kCompleted) continue;
      obs::PredictorAudit::from_run(r.stats, so.device).publish(reg);
    }
    if (so.calibrate != obs::CalibrationMode::kOff) {
      obs::DeviceCalibrator::instance().publish(reg);
    }
    if (service.partition() != nullptr) service.partition()->publish(reg);
  }
  telemetry.finish();
  if (so.calibrate != obs::CalibrationMode::kOff) {
    obs::DeviceCalibrator::instance().disarm();
  }
  return all_completed ? 0 : 1;
}

}  // namespace
}  // namespace husg

int main(int argc, char** argv) {
  using namespace husg;
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  Options opts = Options::parse(argc - 1, argv + 1);
  std::string log_level = opts.get("log-level", "");
  if (!log_level.empty()) {
    if (log_level == "quiet") {
      log::set_level(log::Level::kError);
    } else if (log_level == "warn") {
      log::set_level(log::Level::kWarn);
    } else if (log_level == "info") {
      log::set_level(log::Level::kInfo);
    } else if (log_level == "debug") {
      log::set_level(log::Level::kDebug);
    } else {
      return invalid_option("--log-level", log_level,
                            "quiet|warn|info|debug");
    }
  }
  try {
    if (cmd == "generate") return cmd_generate(opts);
    if (cmd == "build") return cmd_build(opts);
    if (cmd == "info") return cmd_info(opts);
    if (cmd == "verify") return cmd_verify(opts);
    if (cmd == "run") return cmd_run(opts);
    if (cmd == "serve") return cmd_serve(opts);
    if (cmd == "inspect-bundle") return cmd_inspect_bundle(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
