// husg_replay: offline analysis of block I/O traces recorded with
// `husg_cli run|serve --iotrace-out FILE` (obs/iotrace.hpp).
//
//   husg_replay --trace FILE [--check] [--curve] [--curve-points N]
//               [--whatif paper,device,cache-aware] [--json OUT]
//               [--jsonl OUT] [--quiet]
//
// Modes (combinable; all come from one loaded trace, no disk re-run):
//   --check   replay the access stream through a simulated BlockCache at the
//             RECORDED budget and compare every counter against the live
//             outcomes written in the trace. Exit 1 on divergence — this is
//             the CI fidelity gate.
//   --curve   budget sweep -> miss-ratio curve + recommended knee budget.
//   --whatif  re-evaluate the recorded ROP/COP decisions under the given
//             predictor flavors; reports decision flips and the modeled I/O
//             delta vs the recorded run.
//   --json    write a BENCH_*-style report ({"bench": ..., "runs": [...]},
//             parseable by tools/bench_regress.py) plus curve/whatif arrays.
//   --jsonl   dump the raw trace as JSON lines (one record per line).
//
// Exit codes: 0 ok, 1 fidelity check failed, 2 bad usage / unreadable trace.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "io/backend/io_backend.hpp"
#include "obs/iotrace.hpp"
#include "obs/iotrace_replay.hpp"
#include "util/common.hpp"

namespace {

using husg::IoBackendKind;
using husg::PredictorFlavor;
using husg::to_string;
using husg::obs::MissRatioCurve;
using husg::obs::ReplayCounters;
using husg::obs::TraceFile;
using husg::obs::WhatIfResult;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace FILE [--check] [--curve] [--curve-points N]\n"
      "          [--whatif paper,device,cache-aware] [--json OUT]\n"
      "          [--jsonl OUT] [--quiet]\n",
      argv0);
  return 2;
}

const char* flavor_name(PredictorFlavor f) {
  switch (f) {
    case PredictorFlavor::kPaper:
      return "paper";
    case PredictorFlavor::kDeviceExact:
      return "device";
    case PredictorFlavor::kCacheAware:
      return "cache-aware";
  }
  return "?";
}

bool parse_flavor(const std::string& name, PredictorFlavor& out) {
  if (name == "paper") {
    out = PredictorFlavor::kPaper;
  } else if (name == "device" || name == "device-exact") {
    out = PredictorFlavor::kDeviceExact;
  } else if (name == "cache-aware" || name == "cache") {
    out = PredictorFlavor::kCacheAware;
  } else {
    return false;
  }
  return true;
}

void counters_json(std::ostream& os, const std::string& label,
                   const ReplayCounters& c) {
  os << "    {\"label\": \"" << label << "\","
     << " \"cache_hits\": " << c.hits << ","
     << " \"cache_misses\": " << c.misses << ","
     << " \"cache_insertions\": " << c.insertions << ","
     << " \"cache_evictions\": " << c.evictions << ","
     << " \"cache_admission_rejects\": " << c.admission_rejects << ","
     << " \"cache_bytes_saved\": " << c.bytes_saved << ","
     << " \"disk_read_bytes\": " << c.disk_read_bytes << ","
     << " \"cache_hit_rate\": " << (1.0 - c.miss_ratio()) << "}";
}

void print_counters(const char* label, const ReplayCounters& c) {
  std::printf(
      "  %-18s hits=%llu misses=%llu inserts=%llu evictions=%llu "
      "rejects=%llu bytes_saved=%llu disk_read=%llu\n",
      label, static_cast<unsigned long long>(c.hits),
      static_cast<unsigned long long>(c.misses),
      static_cast<unsigned long long>(c.insertions),
      static_cast<unsigned long long>(c.evictions),
      static_cast<unsigned long long>(c.admission_rejects),
      static_cast<unsigned long long>(c.bytes_saved),
      static_cast<unsigned long long>(c.disk_read_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, json_out, jsonl_out, whatif_arg;
  bool do_check = false, do_curve = false, quiet = false;
  std::size_t curve_points = 16;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next("--trace");
    } else if (arg == "--check") {
      do_check = true;
    } else if (arg == "--curve") {
      do_curve = true;
    } else if (arg == "--curve-points") {
      curve_points = static_cast<std::size_t>(
          std::strtoull(next("--curve-points"), nullptr, 10));
      do_curve = true;
    } else if (arg == "--whatif") {
      whatif_arg = next("--whatif");
    } else if (arg == "--json") {
      json_out = next("--json");
    } else if (arg == "--jsonl") {
      jsonl_out = next("--jsonl");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (trace_path.empty()) return usage(argv[0]);

  // Default what-if panel: every flavor (each is one pass over the recorded
  // decisions, there is no reason to be stingy).
  std::vector<PredictorFlavor> flavors;
  {
    const std::string list =
        whatif_arg.empty() ? "paper,device,cache-aware" : whatif_arg;
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) comma = list.size();
      const std::string name = list.substr(pos, comma - pos);
      PredictorFlavor f;
      if (!parse_flavor(name, f)) {
        std::fprintf(stderr, "unknown predictor flavor: %s\n", name.c_str());
        return 2;
      }
      flavors.push_back(f);
      pos = comma + 1;
    }
  }

  TraceFile trace;
  try {
    trace = husg::obs::load_trace(trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failed to load %s: %s\n", trace_path.c_str(),
                 e.what());
    return 2;
  }

  const auto& info = trace.info;
  if (!quiet) {
    std::printf(
        "trace %s: %zu records, p=%u, budget=%llu, fraction=%g, "
        "fill_rop=%d, flavor=%s, granularity=%s, backend=%s, V=%llu, "
        "E=%llu\n",
        trace_path.c_str(), trace.records.size(), info.p,
        static_cast<unsigned long long>(info.budget_bytes),
        info.max_block_fraction, info.fill_rop ? 1 : 0,
        flavor_name(static_cast<PredictorFlavor>(info.flavor)),
        info.granularity == 1 ? "per-interval" : "global",
        to_string(static_cast<IoBackendKind>(info.backend)),
        static_cast<unsigned long long>(info.num_vertices),
        static_cast<unsigned long long>(info.num_edges));
  }

  if (!jsonl_out.empty()) {
    std::ofstream f(jsonl_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", jsonl_out.c_str());
      return 2;
    }
    husg::obs::write_jsonl(trace, f);
    if (!quiet) std::printf("wrote %s\n", jsonl_out.c_str());
  }

  const ReplayCounters live = husg::obs::live_counters(trace);
  const ReplayCounters replayed = husg::obs::replay_cache(
      trace, info.budget_bytes, info.max_block_fraction);
  const bool fidelity_ok = replayed == live;
  if (!quiet) {
    print_counters("live", live);
    print_counters("replay@recorded", replayed);
  }
  if (do_check) {
    if (fidelity_ok) {
      std::printf("fidelity: OK (replay at recorded budget == live)\n");
    } else {
      std::fprintf(stderr,
                   "fidelity: FAIL — simulated counters diverge from the "
                   "recorded live run\n");
    }
  }

  MissRatioCurve curve;
  if (do_curve) {
    curve = husg::obs::miss_ratio_curve(trace, curve_points);
    if (!quiet) {
      std::printf("miss-ratio curve (%zu points, working set ~%llu bytes):\n",
                  curve.points.size(),
                  static_cast<unsigned long long>(curve.unique_payload_bytes));
      for (const auto& pt : curve.points) {
        std::printf("  budget %12llu  miss_ratio %.4f  disk_read %llu\n",
                    static_cast<unsigned long long>(pt.budget_bytes),
                    pt.counters.miss_ratio(),
                    static_cast<unsigned long long>(
                        pt.counters.disk_read_bytes));
      }
      std::printf("  knee budget: %llu bytes\n",
                  static_cast<unsigned long long>(curve.knee_budget_bytes));
    }
  }

  std::vector<WhatIfResult> whatifs;
  for (PredictorFlavor f : flavors) {
    whatifs.push_back(husg::obs::whatif_predictor(trace, f));
  }
  if (!quiet && !whatifs.empty()) {
    std::printf("predictor what-if (recorded flavor: %s):\n",
                flavor_name(static_cast<PredictorFlavor>(info.flavor)));
    for (const WhatIfResult& w : whatifs) {
      std::printf(
          "  %-12s decisions=%llu flips=%llu modeled_io=%.6gs "
          "(recorded-flavor modeled_io=%.6gs, delta=%+.6gs, "
          "baseline_mismatches=%llu)\n",
          flavor_name(w.flavor),
          static_cast<unsigned long long>(w.decisions),
          static_cast<unsigned long long>(w.flips), w.modeled_io_seconds,
          w.baseline_modeled_io_seconds,
          w.modeled_io_seconds - w.baseline_modeled_io_seconds,
          static_cast<unsigned long long>(w.baseline_mismatches));
    }
  }

  if (!json_out.empty()) {
    std::ofstream f(json_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_out.c_str());
      return 2;
    }
    f << "{\n  \"bench\": \"iotrace_replay\",\n"
      << "  \"trace\": \"" << trace_path << "\",\n"
      << "  \"budget_bytes\": " << info.budget_bytes << ",\n"
      << "  \"fidelity_ok\": " << (fidelity_ok ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
    counters_json(f, "live", live);
    f << ",\n";
    counters_json(f, "replay", replayed);
    f << "\n  ]";
    if (do_curve) {
      f << ",\n  \"unique_payload_bytes\": " << curve.unique_payload_bytes
        << ",\n  \"knee_budget_bytes\": " << curve.knee_budget_bytes
        << ",\n  \"curve\": [\n";
      for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const auto& pt = curve.points[i];
        f << "    {\"budget_bytes\": " << pt.budget_bytes
          << ", \"miss_ratio\": " << pt.counters.miss_ratio()
          << ", \"hits\": " << pt.counters.hits
          << ", \"misses\": " << pt.counters.misses
          << ", \"disk_read_bytes\": " << pt.counters.disk_read_bytes << "}"
          << (i + 1 < curve.points.size() ? ",\n" : "\n");
      }
      f << "  ]";
    }
    if (!whatifs.empty()) {
      f << ",\n  \"whatif\": [\n";
      for (std::size_t i = 0; i < whatifs.size(); ++i) {
        const WhatIfResult& w = whatifs[i];
        f << "    {\"flavor\": \"" << flavor_name(w.flavor) << "\""
          << ", \"decisions\": " << w.decisions << ", \"flips\": " << w.flips
          << ", \"modeled_io_seconds\": " << w.modeled_io_seconds
          << ", \"baseline_modeled_io_seconds\": "
          << w.baseline_modeled_io_seconds
          << ", \"baseline_mismatches\": " << w.baseline_mismatches << "}"
          << (i + 1 < whatifs.size() ? ",\n" : "\n");
      }
      f << "  ]";
    }
    f << "\n}\n";
    if (!quiet) std::printf("wrote %s\n", json_out.c_str());
  }

  return do_check && !fidelity_ok ? 1 : 0;
}
